//! E12 — serving-layer load test: throughput, cache hit rate, latency.
//!
//! Deterministic companion of `benches/e12_serve_throughput.rs`: a mixed
//! `enforce`/`dynamics`/`pos`/`aon`/`certify` workload (400 requests over
//! 100 distinct bodies → target hit ratio 75%) is replayed through the
//! [`ndg_serve::Router`] three ways:
//!
//! 1. a **sequential reference** pass with the cache disabled — direct
//!    library calls behind the codec, the byte-exact ground truth;
//! 2. a **per-request latency** pass (cache enabled) measuring each
//!    `handle_line` individually for p50/p99;
//! 3. **batched throughput** passes at threads ∈ {1, 4, 8}, batches of
//!    32 scheduled on the executor — every payload asserted
//!    byte-identical to the reference (the E11-style determinism gate).
//!
//! A fourth pass drives the same workload shape through the
//! [`ndg_serve::chaos`] fault-injection harness over live TCP
//! (`--fault-rate F`, default 0.15; `--fault-rate 0` degrades it to a
//! clean TCP load test) and pins the survival counters as the
//! `e12_chaos` row.
//!
//! Observability gates: the reference pass runs *before*
//! [`ndg_obs::install`], so the latency pass is the only writer of the
//! server-side `serve_request_us` histogram — its p50/p99 must agree
//! with the harness-side percentiles within the histogram's 2× bucket
//! factor — and a warm-replay A/B gates the instrumentation overhead at
//! ≤5% + 2 ms slack. The "on" arm is the full observability stack: the
//! metrics registry installed *and* a flight recorder with a sampled
//! (every 8th event) jsonl sink attached to the router, so the pinned
//! `obs_overhead` row prices wide-event recording and structured
//! logging, not just counter bumps.
//!
//! `--smoke` shrinks the workload (120/40), keeps every determinism and
//! observability gate, and skips the chaos pass and the baseline write.
//!
//! `--check` replays the measurement passes and compares them against
//! the pinned `BENCH_serve.json` instead of rewriting it. Deterministic
//! fields are hard gates: the cache hit rate must match the pin within
//! ±0.005, and the pinned chaos row must say `"survived": true`.
//! Wall-clock fields (latency percentiles, warm-replay walls) drift
//! with the host, so they are **warn-only** outside a generous 4×
//! band — the run still exits 0. The in-run relative gates (payload
//! determinism, 2× histogram agreement, the ≤5% + 2 ms overhead gate)
//! stay hard in every mode.
//!
//! `BENCH_serve.json` at the repo root pins the measured baseline. A
//! 1-core container shows no batching speedup — the determinism
//! assertions are the portable part; re-measure on multicore hardware.

use ndg_bench::{header, row};
use ndg_exec::Executor;
use ndg_serve::{build_workload, payload_of, run_chaos, ChaosSpec, Router, WorkloadSpec};
use std::io::Write as _;
use std::time::Instant;

const THREADS: [usize; 3] = [1, 4, 8];
const SPEC: WorkloadSpec = WorkloadSpec {
    requests: 400,
    distinct: 100,
    seed: 0xE12,
    isomorphs: 1,
};
const SMOKE_SPEC: WorkloadSpec = WorkloadSpec {
    requests: 120,
    distinct: 40,
    seed: 0xE12,
    isomorphs: 1,
};
const BATCH: usize = 32;

/// Read one `name=value` field out of the [`ndg_obs::expose`] text.
fn metric(expo: &str, name: &str) -> f64 {
    expo.split(';')
        .find_map(|f| f.strip_prefix(name).and_then(|r| r.strip_prefix('=')))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric `{name}` missing from exposition: {expo}"))
}

fn main() {
    let mut fault_rate = 0.15f64;
    let mut smoke = false;
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fault-rate" => {
                fault_rate = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|r| (0.0..=1.0).contains(r))
                    .unwrap_or_else(|| {
                        eprintln!("exp_e12: --fault-rate needs a value in [0, 1]");
                        std::process::exit(2);
                    });
            }
            "--smoke" => smoke = true,
            "--check" => check = true,
            _ => {
                eprintln!("usage: exp_e12 [--fault-rate F] [--smoke] [--check]");
                std::process::exit(2);
            }
        }
    }
    if check && smoke {
        // The pin was measured at full size; smoke numbers are not
        // comparable to it.
        eprintln!("exp_e12: --check and --smoke are mutually exclusive");
        std::process::exit(2);
    }
    let spec = if smoke { SMOKE_SPEC } else { SPEC };
    let lines = build_workload(spec);
    println!(
        "E12: serving-layer load ({} requests, {} distinct bodies, batch={BATCH}{})",
        spec.requests,
        spec.distinct,
        if smoke { ", smoke" } else { "" }
    );

    // 1. Sequential, cache-off reference payloads.
    let reference_router = Router::new(Executor::sequential(), 0);
    let t0 = Instant::now();
    let reference: Vec<String> = lines
        .iter()
        .map(|l| payload_of(&reference_router.handle_line(l)))
        .collect();
    let ref_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("reference (sequential, cache off): {ref_ms:.1} ms total");

    // Install the metrics registry only now: the reference pass ran
    // uninstalled, so the latency pass below is the sole writer of the
    // server-side `serve_request_us` histogram read in the 2x gate.
    ndg_obs::install();

    // 2. Per-request latency with the cache on.
    let latency_router = Router::new(Executor::sequential(), 4096);
    let mut lat_us: Vec<f64> = Vec::with_capacity(lines.len());
    for (line, want) in lines.iter().zip(&reference) {
        let t0 = Instant::now();
        let resp = latency_router.handle_line(line);
        lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
        assert_eq!(&payload_of(&resp), want, "latency pass diverged");
    }
    lat_us.sort_by(f64::total_cmp);
    let pct = |p: f64| lat_us[((lat_us.len() - 1) as f64 * p) as usize];
    let (p50, p99) = (pct(0.50), pct(0.99));
    let lstats = latency_router.cache_stats();
    let hit_rate = lstats.hits as f64 / (lstats.hits + lstats.misses) as f64;
    println!(
        "latency (cache on): p50 {p50:.0} µs  p99 {p99:.0} µs  hit rate {:.1}%",
        hit_rate * 100.0
    );

    // 2b. Server-side percentiles from the registry histogram must agree
    //     with the harness-side measurements. The log2 histogram reports
    //     the upper edge of each bucket, so its quantiles sit within
    //     [q, 2q) of the truth — gate at 2x each way plus a small
    //     absolute slack for clock jitter on microsecond samples.
    let expo = ndg_obs::expose();
    let samples = metric(&expo, "serve_request_us_count");
    assert_eq!(
        samples as usize,
        lines.len(),
        "serve_request_us should hold exactly the latency-pass samples"
    );
    let server_p50 = metric(&expo, "serve_request_us_p50");
    let server_p99 = metric(&expo, "serve_request_us_p99");
    // The histogram picks the rank-ceil(q·n) observation; compare against
    // the harness sample at that same rank so the 2x bucket bound is the
    // only source of disagreement.
    let rank_pct = |q: f64| {
        let rank = ((q * lat_us.len() as f64).ceil() as usize).clamp(1, lat_us.len());
        lat_us[rank - 1]
    };
    let within_2x = |server: f64, harness: f64| {
        server <= harness * 2.0 + 10.0 && server + 10.0 >= harness / 2.0
    };
    assert!(
        within_2x(server_p50, rank_pct(0.50)),
        "server-side p50 {server_p50:.0} µs disagrees with harness p50 {:.0} µs by more than 2x",
        rank_pct(0.50)
    );
    assert!(
        within_2x(server_p99, rank_pct(0.99)),
        "server-side p99 {server_p99:.0} µs disagrees with harness p99 {:.0} µs by more than 2x",
        rank_pct(0.99)
    );
    println!(
        "server-side histogram: p50 {server_p50:.0} µs  p99 {server_p99:.0} µs  (within 2x of harness)"
    );

    // 2c. Instrumentation overhead gate: min-of-5 warm cache replays on
    //     a fresh sequential router, everything off vs the full stack on
    //     (metrics registry installed + flight recorder with a sampled
    //     jsonl sink). The on-arm wall must stay within 5% (+2 ms
    //     absolute slack for scheduler noise in a 1-core container).
    let warm_replay_ms = |label: &str, record: bool| {
        let mut router = Router::new(Executor::sequential(), 4096);
        if record {
            let rec = std::sync::Arc::new(ndg_obs::events::Recorder::with_wall_clock());
            rec.set_sample_every(8);
            let sink: Box<dyn std::io::Write + Send> =
                match std::fs::File::create("target/e12_events.jsonl") {
                    Ok(f) => Box::new(f),
                    Err(_) => Box::new(std::io::sink()),
                };
            rec.set_sink(sink);
            router.set_recorder(Some(rec));
        }
        for chunk in lines.chunks(BATCH) {
            router.handle_batch(chunk);
        }
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t0 = Instant::now();
            for chunk in lines.chunks(BATCH) {
                router.handle_batch(chunk);
            }
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        println!("warm replay ({label}): min-of-5 {best:.2} ms");
        best
    };
    ndg_obs::uninstall();
    let warm_off_ms = warm_replay_ms("registry off", false);
    ndg_obs::install();
    let warm_on_ms = warm_replay_ms("registry + recorder + jsonl", true);
    assert!(
        warm_on_ms <= warm_off_ms * 1.05 + 2.0,
        "observability overhead too high: warm replay {warm_on_ms:.2} ms with registry + \
         recorder + jsonl vs {warm_off_ms:.2} ms bare (gate: <=5% + 2 ms)"
    );
    println!("OK: registry + recorder + jsonl overhead within 5% (+2 ms slack) on warm replays");

    // 3. Batched throughput at each thread count.
    let widths = [8, 10, 10, 11, 10];
    println!(
        "{}",
        header(
            &["threads", "wall-ms", "req/s", "hit-rate", "speedup"],
            &widths
        )
    );
    let mut results = Vec::new();
    let mut base_ms = None;
    for t in THREADS {
        let router = Router::new(Executor::new(t), 4096);
        // Median of 3 replays (fresh warmup pass excluded from dispute:
        // each replay re-runs the full stream, so later replays serve
        // mostly from cache — exactly the serving scenario).
        let mut times = Vec::new();
        let mut payloads: Vec<String> = Vec::new();
        for _ in 0..3 {
            let t0 = Instant::now();
            let mut got = Vec::with_capacity(lines.len());
            for chunk in lines.chunks(BATCH) {
                got.extend(router.handle_batch(chunk));
            }
            times.push(t0.elapsed().as_secs_f64() * 1e3);
            payloads = got.iter().map(|l| payload_of(l)).collect();
        }
        assert_eq!(
            payloads, reference,
            "threads={t}: batched payloads diverged from the sequential reference"
        );
        times.sort_by(f64::total_cmp);
        let wall_ms = times[1];
        let stats = router.cache_stats();
        let hr = stats.hits as f64 / (stats.hits + stats.misses) as f64;
        let rps = spec.requests as f64 / (wall_ms / 1e3);
        let speedup = match base_ms {
            None => {
                base_ms = Some(wall_ms);
                1.0
            }
            Some(b) => b / wall_ms,
        };
        println!(
            "{}",
            row(
                &[
                    t.to_string(),
                    format!("{wall_ms:.2}"),
                    format!("{rps:.0}"),
                    format!("{:.1}%", hr * 100.0),
                    format!("{speedup:.2}x"),
                ],
                &widths
            )
        );
        results.push((t, wall_ms, rps, hr));
    }
    println!("OK: all payloads bit-identical to sequential library calls at threads ∈ {THREADS:?}");

    if smoke {
        println!("smoke mode: skipping chaos pass and BENCH_serve.json write");
        return;
    }

    if check {
        // --check: compare this run against the pinned baseline instead
        // of re-pinning it. The cache hit rate is a pure function of the
        // workload, so it must match the pin (±0.005, hard). Wall-clock
        // fields drift with the host: they warn outside a 4x band either
        // way and never fail the run. The first occurrence of each key
        // is read, which is the `latency`/`obs_overhead` section — the
        // later `benchmarks` rows reuse `cache_hit_rate` by design.
        let path = "BENCH_serve.json";
        let pinned = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("exp_e12 --check: cannot read {path}: {e}");
            std::process::exit(1);
        });
        let pin = |key: &str| -> f64 {
            pinned
                .find(&format!("\"{key}\": "))
                .and_then(|i| {
                    pinned[i + key.len() + 4..]
                        .split([',', '}', '\n'])
                        .next()
                        .and_then(|v| v.trim().parse().ok())
                })
                .unwrap_or(f64::NAN)
        };
        let mut hard_fail = false;
        let pin_hit = pin("cache_hit_rate");
        if !(pin_hit - hit_rate).abs().is_finite() || (pin_hit - hit_rate).abs() > 0.005 {
            eprintln!(
                "exp_e12 --check: cache hit rate {hit_rate:.3} != pinned {pin_hit:.3} \
                 (deterministic field, hard gate)"
            );
            hard_fail = true;
        }
        if !pinned.contains("\"survived\": true") {
            eprintln!("exp_e12 --check: pinned e12_chaos row is missing `\"survived\": true`");
            hard_fail = true;
        }
        const WARN_BAND: f64 = 4.0;
        for (name, fresh, pin_v) in [
            ("latency p50_us", p50, pin("p50_us")),
            ("latency p99_us", p99, pin("p99_us")),
            ("warm_replay_ms_off", warm_off_ms, pin("warm_replay_ms_off")),
            ("warm_replay_ms_on", warm_on_ms, pin("warm_replay_ms_on")),
        ] {
            if !pin_v.is_finite() {
                eprintln!("exp_e12 --check: `{name}` missing from {path}");
                hard_fail = true;
            } else if fresh > pin_v * WARN_BAND || fresh < pin_v / WARN_BAND {
                println!(
                    "WARN: {name} {fresh:.2} vs pinned {pin_v:.2} — outside the {WARN_BAND}x \
                     band; wall-clock drift is warn-only"
                );
            }
        }
        if hard_fail {
            std::process::exit(1);
        }
        println!(
            "OK: --check against {path} — deterministic fields match the pin; \
             wall-clock fields within the warn band or warned above"
        );
        return;
    }

    // 4. Chaos pass: the same workload shape over live TCP under seeded
    //    fault injection (or a clean TCP load test at --fault-rate 0).
    let chaos_spec = ChaosSpec {
        seed: 0xE12,
        requests: spec.requests,
        distinct: spec.distinct,
        fault_rate,
        threads: None,
    };
    let t0 = Instant::now();
    let chaos = match run_chaos(chaos_spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("exp_e12: chaos pass aborted: {e}");
            std::process::exit(1);
        }
    };
    let chaos_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "chaos (fault-rate {fault_rate}): {chaos_ms:.1} ms  corrupt={} torn={} panics={} \
         delays={} disconnects={} shed={}",
        chaos.corrupt, chaos.torn, chaos.panics, chaos.delays, chaos.disconnects, chaos.shed
    );
    for f in &chaos.failures {
        eprintln!("chaos FAIL: {f}");
    }
    assert!(
        chaos.ok(),
        "chaos pass violated the survival contract ({} failures)",
        chaos.failures.len()
    );
    println!("OK: server survived fault injection; surviving payloads byte-identical");

    // 5. Pin the baseline.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"group\": \"e12_serve_throughput\",\n");
    json.push_str(&format!(
        "  \"note\": \"ndg-serve batched request engine on a mixed enforce/dynamics/pos/aon/certify workload ({} requests over {} distinct bodies, batch={BATCH}); payloads asserted byte-identical to sequential cache-off library calls at every thread count. Measured in a {}-core container: batching cannot speed up a single core, so re-measure requests/s on multicore hardware; the determinism + cache-reuse numbers are the portable part.\",\n",
        spec.requests,
        spec.distinct,
        ndg_exec::available_threads(),
    ));
    json.push_str(&format!(
        "  \"container_cores\": {},\n",
        ndg_exec::available_threads()
    ));
    json.push_str(&format!(
        "  \"latency\": {{ \"p50_us\": {p50:.1}, \"p99_us\": {p99:.1}, \"server_p50_us\": {server_p50:.1}, \"server_p99_us\": {server_p99:.1}, \"cache_hit_rate\": {hit_rate:.3} }},\n"
    ));
    json.push_str(&format!(
        "  \"obs_overhead\": {{ \"warm_replay_ms_off\": {warm_off_ms:.2}, \"warm_replay_ms_on\": {warm_on_ms:.2}, \"on_arm\": \"registry + flight recorder + jsonl sink (sample=8)\", \"gate\": \"<=5% + 2 ms\" }},\n"
    ));
    json.push_str(&format!(
        "  \"e12_chaos\": {{ \"fault_rate\": {fault_rate}, \"wall_ms\": {chaos_ms:.2}, \
         \"requests\": {}, \"corrupt\": {}, \"torn\": {}, \"panics\": {}, \"delays\": {}, \
         \"disconnects\": {}, \"shed\": {}, \"survived\": true }},\n",
        chaos.requests,
        chaos.corrupt,
        chaos.torn,
        chaos.panics,
        chaos.delays,
        chaos.disconnects,
        chaos.shed
    ));
    json.push_str("  \"benchmarks\": [\n");
    for (i, (t, wall_ms, rps, hr)) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"id\": \"serve_batched/threads={t}\", \"wall_ms\": {wall_ms:.2}, \"requests_per_s\": {rps:.0}, \"cache_hit_rate\": {hr:.3} }}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_serve.json";
    // Preserve the `e14_canon` section pinned by exp_e14, if one is
    // already there (shared layout invariant: ndg_bench::split/join).
    if let Ok(old) = std::fs::read_to_string(path) {
        if let (_, Some(section)) = ndg_bench::split_bench_serve(&old) {
            let (body, _) = ndg_bench::split_bench_serve(&json);
            json = ndg_bench::join_bench_serve(&body, Some(&section));
        }
    }
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
