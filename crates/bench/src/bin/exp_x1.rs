//! X1 — Extensions (the paper's Section 6 program).
//!
//! Quantitative sweep over the implemented extensions:
//! (a) fractional vs integral SND optimum across budgets;
//! (b) weighted enforcement price as one player's demand grows;
//! (c) stability threshold α* of the Theorem 11 cycle vs subsidy budget.

use ndg_bench::{header, random_broadcast, row};
use ndg_core::{weighted::Demands, State, SubsidyAssignment};
use ndg_graph::{mst_weight, EdgeId};
use std::f64::consts::E;

fn main() {
    // --- (a) fractional vs integral SND ---
    println!("X1a: fractional vs all-or-nothing SND optimum (n = 6, avg of 4 games)");
    let widths = [8, 12, 12];
    println!("{}", header(&["beta", "frac wgt", "aon wgt"], &widths));
    let games: Vec<_> = (0..4u64)
        .map(|s| random_broadcast(6, 0.5, 7000 + s).0)
        .collect();
    for step in 0..=4 {
        let mut frac_total = 0.0;
        let mut aon_total = 0.0;
        for game in &games {
            let opt = mst_weight(game.graph()).unwrap();
            let budget = opt * step as f64 / (4.0 * E);
            frac_total += ndg_snd::exhaustive::min_weight_within_budget(game, budget, 100_000)
                .unwrap()
                .weight;
            aon_total +=
                ndg_snd::exhaustive::min_weight_within_budget_aon(game, budget, 100_000, 5_000_000)
                    .unwrap()
                    .weight;
        }
        let k = games.len() as f64;
        println!(
            "{}",
            row(
                &[
                    format!("{:.4}", step as f64 / (4.0 * E)),
                    format!("{:.4}", frac_total / k),
                    format!("{:.4}", aon_total / k),
                ],
                &widths
            )
        );
        assert!(aon_total >= frac_total - 1e-6, "integral never lighter");
    }

    // --- (b) weighted enforcement price ---
    println!("\nX1b: enforcement price of the heavy-player four-cycle vs demand d₁");
    let widths = [10, 12];
    println!("{}", header(&["d1", "min subsidy"], &widths));
    let mut g = ndg_graph::Graph::new(4);
    let e0 = g
        .add_edge(ndg_graph::NodeId(0), ndg_graph::NodeId(1), 1.0)
        .unwrap();
    let e1 = g
        .add_edge(ndg_graph::NodeId(1), ndg_graph::NodeId(2), 1.2)
        .unwrap();
    let _ = g
        .add_edge(ndg_graph::NodeId(2), ndg_graph::NodeId(3), 0.9)
        .unwrap();
    let e3 = g
        .add_edge(ndg_graph::NodeId(3), ndg_graph::NodeId(0), 1.0)
        .unwrap();
    let game = ndg_core::NetworkDesignGame::broadcast(g, ndg_graph::NodeId(0)).unwrap();
    let (state, _) = State::from_tree(&game, &[e0, e1, e3]).unwrap();
    let mut prev = f64::INFINITY;
    for d1 in [1.0, 2.0, 4.0, 8.0, 100.0] {
        let d = Demands::new(&game, vec![d1, 1.0, 1.0]).unwrap();
        let (sol, _) = ndg_sne::lp_weighted::enforce_state_weighted(&game, &state, &d).unwrap();
        println!(
            "{}",
            row(&[format!("{d1:.0}"), format!("{:.5}", sol.cost)], &widths)
        );
        assert!(sol.cost <= prev + 1e-9, "price falls as d₁ grows here");
        prev = sol.cost;
    }

    // --- (c) α* vs budget ---
    println!("\nX1c: stability threshold α* of the n = 10 cycle vs subsidized far edges");
    let widths = [10, 10];
    println!("{}", header(&["edges", "alpha*"], &widths));
    let n = 10;
    let (game, tree) = ndg_sne::lower_bound::cycle_instance(n);
    let (state, _) = State::from_tree(&game, &tree).unwrap();
    for k in [0usize, 2, 4, 6, 8, 10] {
        let subsidized: Vec<EdgeId> = (0..k).map(|i| EdgeId((n - 1 - i) as u32)).collect();
        let b = SubsidyAssignment::all_or_nothing(game.graph(), &subsidized);
        let alpha = ndg_core::stability_threshold(&game, &state, &b);
        println!("{}", row(&[k.to_string(), format!("{alpha:.4}")], &widths));
    }
    println!("\nα* falls from H_n to 1 as the least-crowded edges are bought out");
}
