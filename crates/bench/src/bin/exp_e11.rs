//! E11 — parallel LP separation: cutting-plane wall time vs thread count.
//!
//! Deterministic companion of `benches/e11_parallel_separation.rs`: the
//! same n=64 general games are priced with the batched cutting-plane
//! solver at threads ∈ {1, 4, 8}. The subsidy vectors must be
//! **bit-identical** across thread counts (batched rows are gathered in
//! player order with sorted coefficients), and the wall clock per thread
//! count is printed. `BENCH_separation.json` at the repo root pins the
//! measured baseline; note that a single-core container will show no
//! speedup — the determinism assertions are the portable part.

use ndg_bench::{header, random_general, random_tree, row};
use ndg_core::State;
use ndg_exec::Executor;
use ndg_sne::lp_general::enforce_state_cutting_with;
use std::time::Instant;

const THREADS: [usize; 3] = [1, 4, 8];

fn main() {
    let widths = [5, 9, 8, 7, 7, 11, 9];
    println!("E11: batched LP separation (n=64 general games, random-tree state)");
    println!(
        "{}",
        header(
            &["n", "players", "threads", "rounds", "cuts", "wall-ms", "speedup"],
            &widths
        )
    );
    for (players, seed) in [(24usize, 11_064u64), (48, 11_065), (63, 11_066)] {
        let (game, _mst) = random_general(64, 0.25, players, seed);
        // A random (non-minimum) spanning tree: its induced state needs
        // real subsidies, so the cutting-plane loop runs many rounds.
        let tree = random_tree(game.graph(), seed ^ 0xE11);
        let (state, _) = State::from_tree(&game, &tree).unwrap();
        let mut reference: Option<(Vec<f64>, f64)> = None;
        for t in THREADS {
            let ex = Executor::new(t);
            // Median of 3 runs to tame scheduler noise.
            let mut times = Vec::new();
            let mut last = None;
            for _ in 0..3 {
                let t0 = Instant::now();
                let out = enforce_state_cutting_with(&game, &state, &ex).unwrap();
                times.push(t0.elapsed().as_secs_f64() * 1e3);
                last = Some(out);
            }
            times.sort_by(f64::total_cmp);
            let wall_ms = times[1];
            let (sol, stats) = last.unwrap();
            let x = sol.subsidies.as_slice().to_vec();
            let speedup = match &reference {
                None => {
                    reference = Some((x, wall_ms));
                    1.0
                }
                Some((want, base_ms)) => {
                    assert_eq!(
                        &x, want,
                        "threads={t}: subsidy vector diverged from threads=1"
                    );
                    base_ms / wall_ms
                }
            };
            println!(
                "{}",
                row(
                    &[
                        "64".to_string(),
                        players.to_string(),
                        t.to_string(),
                        stats.rounds.to_string(),
                        stats.cuts_added.to_string(),
                        format!("{wall_ms:.2}"),
                        format!("{speedup:.2}x"),
                    ],
                    &widths
                )
            );
        }
    }
    println!("OK: subsidy vectors bit-identical across thread counts");
}
