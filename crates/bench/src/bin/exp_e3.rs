//! E3 — The all-or-nothing `e/(2e−1)` constant (Theorem 21).
//!
//! On the Theorem 21 family, prints the exact minimum all-or-nothing
//! subsidy (branch-and-bound), the two proof cases, and the fractional
//! LP optimum. The AoN ratio converges to `e/(2e−1) ≈ 0.61270` while the
//! fractional one stays near `1/e`, exhibiting the integrality gap of
//! Section 5.

use ndg_aon::lower_bound::{
    asymptotic_ratio, exact_min_aon, theorem21_instance, tree_weight, x_of,
};
use ndg_bench::{header, row};

fn main() {
    let widths = [5, 10, 10, 10, 10, 10, 10];
    println!("E3: minimum all-or-nothing subsidies on the Theorem 21 family");
    println!(
        "{}",
        header(
            &["n", "aon", "case1", "case2", "aon/wgt", "frac/wgt", "e/(2e-1)"],
            &widths
        )
    );
    for n in [6usize, 8, 10, 12, 14, 16] {
        let sol = exact_min_aon(n, 100_000_000).expect("B&B within budget");
        let x = x_of(n);
        let case1 = (n as f64 - 1.0) * x;
        // Case 2: heavy edge + enough light edges for v_{n−1}; report the
        // B&B's own cost when the heavy edge is in the solution, else ∞.
        let heavy_id = ndg_graph::EdgeId((n - 1) as u32);
        let case2 = if sol.edges.contains(&heavy_id) {
            sol.cost
        } else {
            f64::NAN
        };
        let (game, tree) = theorem21_instance(n);
        let frac = ndg_sne::lp_broadcast::enforce_tree_lp(&game, &tree).expect("lp3");
        let wgt = tree_weight(n);
        println!(
            "{}",
            row(
                &[
                    n.to_string(),
                    format!("{:.4}", sol.cost),
                    format!("{case1:.4}"),
                    if case2.is_nan() {
                        "-".into()
                    } else {
                        format!("{case2:.4}")
                    },
                    format!("{:.5}", sol.cost / wgt),
                    format!("{:.5}", frac.cost / wgt),
                    format!("{:.5}", asymptotic_ratio()),
                ],
                &widths
            )
        );
        assert!(sol.cost <= case1 + 1e-9, "optimum never beats case 1");
        assert!(frac.cost <= sol.cost + 1e-7, "fractional ≤ integral");
    }
    println!(
        "\naon/wgt → e/(2e−1) ≈ 0.6127 (O(1/n) convergence); the fractional optimum\n\
         stays far below — the integrality gap of Section 5"
    );
}
