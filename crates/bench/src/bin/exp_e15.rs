//! E15 — orbit-pruned exact enumeration: how much of the spanning-tree
//! sweep the automorphism group removes, at what overhead, under the
//! bit-identity contract.
//!
//! For each family the exact PoS is computed twice: through the unpruned
//! streaming sweep (one Lemma-2 scan per spanning tree) and through the
//! orbit-pruned sweep (one scan per tree *orbit* under the root-fixing
//! automorphism group reported by `ndg-canon`, including the group
//! discovery itself). Gates, asserted here and smoke-run in CI:
//!
//! 1. **Bit-identity**: both paths return the same PoS bits on every
//!    family — symmetric and asymmetric alike.
//! 2. **Pruning power**: on the 3-cube (root stabilizer of order 6) and
//!    the 3×3 torus (order 8) the orbit sweep scans ≥4× fewer trees.
//! 3. **Trivial-group fast path**: on an asymmetric random instance the
//!    orbit driver stays within 10% (+2 ms timer slack) of the unpruned
//!    sweep — group discovery degrades to a cheap trivial-group probe.
//!
//! Results are spliced into `BENCH_dynamics.json` under `"e15_orbit"`
//! (preserving the pinned e10/e13 body). 1-core container: the per-tree
//! scan counts and bit-identity are the portable part; wall clocks scale
//! with the reduction only once the Lemma-2 scans dominate.

use ndg_bench::{header, row};
use ndg_core::{
    count_spanning_trees, for_each_spanning_tree_orbits, NetworkDesignGame, SubsidyAssignment,
};
use ndg_graph::{generators, NodeId};
use ndg_snd::orbits::{broadcast_edge_group, exact_pos_orbits};
use ndg_snd::pos::exact_pos_unpruned;
use rand::prelude::*;
use std::io::Write as _;
use std::ops::ControlFlow;
use std::time::Instant;

const CAP: usize = 200_000;

fn broadcast(g: ndg_graph::Graph) -> NetworkDesignGame {
    NetworkDesignGame::broadcast(g, NodeId(0)).expect("connected family")
}

/// Best-of-3 wall clock in milliseconds.
fn time_ms(mut f: impl FnMut() -> f64) -> (f64, f64) {
    let mut best = f64::INFINITY;
    let mut value = 0.0;
    for _ in 0..3 {
        let t0 = Instant::now();
        value = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (value, best)
}

struct FamilyResult {
    id: &'static str,
    trees: u64,
    reps: u64,
    group_order: usize,
    unpruned_ms: f64,
    orbit_ms: f64,
}

fn main() {
    let mut rng = StdRng::seed_from_u64(0xE15);
    let families: Vec<(&'static str, ndg_graph::Graph)> = vec![
        ("C_12", generators::cycle_graph(12, 1.0)),
        ("Q3", generators::hypercube_graph(3, 1.0)),
        ("grid_4x4", generators::grid_graph(4, 4, 1.0)),
        ("torus_3x3", generators::torus_graph(3, 3, 1.0)),
        (
            "random_9",
            generators::random_connected(9, 0.3, &mut rng, 0.3..3.0),
        ),
    ];
    println!("E15: orbit-pruned exact PoS vs the unpruned sweep (cap {CAP})");
    let widths = [10, 9, 9, 6, 7, 12, 12, 8];
    println!(
        "{}",
        header(
            &[
                "family",
                "trees",
                "orbits",
                "group",
                "prune",
                "unpruned-ms",
                "orbit-ms",
                "speedup"
            ],
            &widths
        )
    );

    let mut results: Vec<FamilyResult> = Vec::new();
    for (id, g) in families {
        let game = broadcast(g);
        let b0 = SubsidyAssignment::zero(game.graph());
        let group = broadcast_edge_group(&game, &b0);
        let trees = count_spanning_trees(game.graph()).round() as u64;
        let mut reps: u64 = 0;
        let mut covered: u64 = 0;
        for_each_spanning_tree_orbits(game.graph(), &group, |_, size| {
            reps += 1;
            covered += size;
            ControlFlow::Continue(())
        })
        .expect("under cap");
        assert_eq!(
            covered, trees,
            "{id}: orbit sizes must sum to the tree count"
        );

        let (plain, unpruned_ms) = time_ms(|| exact_pos_unpruned(&game, CAP).expect("has PoS"));
        let (orbit, orbit_ms) = time_ms(|| exact_pos_orbits(&game, CAP).expect("has PoS"));
        assert_eq!(
            plain.to_bits(),
            orbit.to_bits(),
            "{id}: orbit PoS diverged ({plain} vs {orbit})"
        );

        println!(
            "{}",
            row(
                &[
                    id.to_string(),
                    trees.to_string(),
                    reps.to_string(),
                    group.order().to_string(),
                    format!("{:.1}x", trees as f64 / reps as f64),
                    format!("{unpruned_ms:.2}"),
                    format!("{orbit_ms:.2}"),
                    format!("{:.2}x", unpruned_ms / orbit_ms),
                ],
                &widths
            )
        );
        results.push(FamilyResult {
            id,
            trees,
            reps,
            group_order: group.order(),
            unpruned_ms,
            orbit_ms,
        });
    }

    // Acceptance gates.
    for r in &results {
        let prune = r.trees as f64 / r.reps as f64;
        match r.id {
            "Q3" | "torus_3x3" => assert!(
                prune >= 4.0,
                "gate: {} must scan >=4x fewer trees, got {prune:.2}x",
                r.id
            ),
            "random_9" => assert!(
                r.orbit_ms <= r.unpruned_ms * 1.10 + 2.0,
                "gate: trivial-group fast path overhead too high \
                 ({:.2} ms vs {:.2} ms unpruned)",
                r.orbit_ms,
                r.unpruned_ms
            ),
            _ => {}
        }
    }
    println!(
        "OK: PoS bit-identical on every family; >=4x fewer Lemma-2 scans on Q3 and \
         torus_3x3; trivial-group overhead within 10% on random_9"
    );

    // Splice the e15 section into BENCH_dynamics.json, preserving the
    // pinned e10/e13 body (shared layout invariant: ndg_bench::split/join).
    let section = {
        let mut s = String::new();
        s.push_str("\"e15_orbit\": {\n");
        s.push_str(
            "    \"note\": \"Orbit-pruned exact PoS vs the unpruned spanning-tree sweep: \
             one Lemma-2 scan per tree orbit under the root-fixing automorphism group \
             (ndg-canon generators, EdgeGroup closure), bit-identical results asserted on \
             every family. trees/orbits are exact scan counts; wall clocks are best-of-3 \
             on a 1-core container and include group discovery in orbit_ms.\",\n",
        );
        s.push_str("    \"families\": [\n");
        for (i, r) in results.iter().enumerate() {
            s.push_str(&format!(
                "      {{ \"id\": \"{}\", \"trees\": {}, \"orbit_reps\": {}, \
                 \"group_order\": {}, \"scan_reduction\": {:.2}, \"unpruned_ms\": {:.2}, \
                 \"orbit_ms\": {:.2}, \"speedup\": {:.2} }}{}\n",
                r.id,
                r.trees,
                r.reps,
                r.group_order,
                r.trees as f64 / r.reps as f64,
                r.unpruned_ms,
                r.orbit_ms,
                r.unpruned_ms / r.orbit_ms,
                if i + 1 < results.len() { "," } else { "" }
            ));
        }
        s.push_str("    ]\n  }");
        s
    };
    let path = "BENCH_dynamics.json";
    let merged = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let (body, _) = ndg_bench::split_bench_section(&existing, "e15_orbit");
            ndg_bench::join_bench_section(&body, Some(&section))
        }
        // No pinned file yet: a fresh single-section object (the splice
        // path would leave a stray leading comma here).
        Err(_) => format!("{{\n  {section}\n}}\n"),
    };
    match std::fs::File::create(path).and_then(|mut f| f.write_all(merged.as_bytes())) {
        Ok(()) => println!("wrote {path} (e15_orbit section)"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
