//! A1 — Ablation: packing strategies (the Figure 4 intuition).
//!
//! On the Theorem 11 path-cost structure (usages n, n−1, …, 1; cap 1),
//! compares the subsidy needed when packing on the least crowded edges
//! (the paper's choice) vs most-crowded packing vs uniform spreading.
//! Least-crowded converges to `n/e`; most-crowded needs ≈ all of the
//! weight; uniform sits at `1 − 1/H_n` of the weight.

use ndg_bench::{header, row};
use ndg_graph::harmonic;
use ndg_sne::theorem6::{min_subsidy_to_cap_cost, PackingStrategy};

fn main() {
    let widths = [8, 12, 12, 12, 10];
    println!("A1: subsidy/wgt needed to cap the far player's cost at 1");
    println!(
        "{}",
        header(&["n", "least/n", "most/n", "uniform/n", "1/e"], &widths)
    );
    let inv_e = 1.0 / std::f64::consts::E;
    for n in [10usize, 100, 1000, 10_000, 100_000] {
        let usages: Vec<u32> = (1..=n as u32).rev().collect();
        let weights = vec![1.0f64; n];
        let least = min_subsidy_to_cap_cost(&usages, &weights, 1.0, PackingStrategy::LeastCrowded)
            .expect("feasible");
        let most = min_subsidy_to_cap_cost(&usages, &weights, 1.0, PackingStrategy::MostCrowded)
            .expect("feasible");
        let unif = min_subsidy_to_cap_cost(&usages, &weights, 1.0, PackingStrategy::Uniform)
            .expect("feasible");
        println!(
            "{}",
            row(
                &[
                    n.to_string(),
                    format!("{:.5}", least / n as f64),
                    format!("{:.5}", most / n as f64),
                    format!("{:.5}", unif / n as f64),
                    format!("{inv_e:.5}"),
                ],
                &widths
            )
        );
        assert!(least <= most && least <= unif);
        // Uniform's closed form: λ = 1 − 1/H_n.
        let lambda = 1.0 - 1.0 / harmonic(n as u64);
        assert!((unif / n as f64 - lambda).abs() < 1e-9);
    }
    println!("\nleast-crowded → 1/e; uniform → 1 − 1/H_n → 1; most-crowded ≈ 1");
}
