//! Weighted players (Section 6; Chen–Roughgarden \[14\]).
//!
//! Each player `i` has a demand `dᵢ > 0` and pays a *proportional* share
//! of each edge she uses: `cost_i(T; b) = Σ_{a∈Tᵢ} (w_a − b_a)·dᵢ/D_a(T)`
//! where `D_a(T)` is the total demand on `a`. Unweighted games are the
//! `dᵢ ≡ 1` special case. Unlike the unweighted game, proportional-share
//! weighted games need not admit an exact potential, so this module
//! provides only what remains sound: exact cost evaluation, best responses
//! (Dijkstra on proportional deviation weights) and Nash verification.
//! Enforcement stays an LP — see `ndg-sne::lp_weighted`.

use crate::game::NetworkDesignGame;
use crate::num::strictly_lt;
use crate::state::State;
use crate::subsidy::SubsidyAssignment;
use ndg_graph::paths::dijkstra_with;
use ndg_graph::EdgeId;

/// A weighted view over a game: per-player demands.
#[derive(Clone, Debug)]
pub struct Demands {
    d: Vec<f64>,
}

impl Demands {
    /// Validate demands: one per player, each positive and finite.
    pub fn new(game: &NetworkDesignGame, d: Vec<f64>) -> Option<Self> {
        if d.len() != game.num_players()
            || d.iter().any(|&x| x <= 0.0 || x.is_nan() || !x.is_finite())
        {
            return None;
        }
        Some(Demands { d })
    }

    /// Uniform demands (the unweighted game).
    pub fn uniform(game: &NetworkDesignGame) -> Self {
        Demands {
            d: vec![1.0; game.num_players()],
        }
    }

    /// Demand of player `i`.
    #[inline]
    pub fn of(&self, i: usize) -> f64 {
        self.d[i]
    }

    /// Total demand `D_a(T)` on edge `e` in `state`.
    pub fn load(&self, state: &State, e: EdgeId) -> f64 {
        (0..state.num_players())
            .filter(|&i| state.uses(i, e))
            .map(|i| self.d[i])
            .sum()
    }
}

/// `cost_i(T; b)` under proportional sharing.
pub fn weighted_player_cost(
    game: &NetworkDesignGame,
    state: &State,
    demands: &Demands,
    b: &SubsidyAssignment,
    i: usize,
) -> f64 {
    let g = game.graph();
    state
        .path(i)
        .iter()
        .map(|&e| b.residual(g, e) * demands.of(i) / demands.load(state, e))
        .sum()
}

/// Deviation cost of player `i` moving to `alt_path`: on each edge the
/// load becomes `D_a(T) + dᵢ·(1 − n_a^i(T))`.
pub fn weighted_deviation_cost(
    game: &NetworkDesignGame,
    state: &State,
    demands: &Demands,
    b: &SubsidyAssignment,
    i: usize,
    alt_path: &[EdgeId],
) -> f64 {
    let g = game.graph();
    let d_i = demands.of(i);
    alt_path
        .iter()
        .map(|&e| {
            let load = demands.load(state, e) + if state.uses(i, e) { 0.0 } else { d_i };
            b.residual(g, e) * d_i / load
        })
        .sum()
}

/// Best response of player `i` under proportional sharing.
pub fn weighted_best_response(
    game: &NetworkDesignGame,
    state: &State,
    demands: &Demands,
    b: &SubsidyAssignment,
    i: usize,
) -> (Vec<EdgeId>, f64) {
    let g = game.graph();
    let player = game.players()[i];
    let d_i = demands.of(i);
    let sp = dijkstra_with(g, player.source, |e| {
        let load = demands.load(state, e) + if state.uses(i, e) { 0.0 } else { d_i };
        b.residual(g, e) * d_i / load
    });
    let path = sp
        .path_to(g, player.terminal)
        .expect("game validation guarantees a connecting path");
    let cost = weighted_deviation_cost(game, state, demands, b, i, &path);
    (path, cost)
}

/// Whether `state` is a Nash equilibrium of the weighted extension.
pub fn weighted_is_equilibrium(
    game: &NetworkDesignGame,
    state: &State,
    demands: &Demands,
    b: &SubsidyAssignment,
) -> bool {
    (0..game.num_players()).all(|i| {
        let current = weighted_player_cost(game, state, demands, b, i);
        let (_, best) = weighted_best_response(game, state, demands, b, i);
        !strictly_lt(best, current)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::player_cost;
    use crate::equilibrium;
    use crate::game::NetworkDesignGame;
    use ndg_graph::{generators, kruskal, NodeId};

    #[test]
    fn demands_validation() {
        let g = generators::cycle_graph(4, 1.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        assert!(Demands::new(&game, vec![1.0, 2.0, 3.0]).is_some());
        assert!(Demands::new(&game, vec![1.0, 2.0]).is_none());
        assert!(Demands::new(&game, vec![1.0, 0.0, 3.0]).is_none());
        assert!(Demands::new(&game, vec![1.0, -2.0, 3.0]).is_none());
        assert!(Demands::new(&game, vec![1.0, f64::NAN, 3.0]).is_none());
    }

    #[test]
    fn uniform_demands_reduce_to_unweighted() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(404);
        for _ in 0..10 {
            let n = rng.random_range(3..9usize);
            let g = generators::random_connected(n, 0.5, &mut rng, 0.3..3.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let tree = kruskal(game.graph()).unwrap();
            let (state, _) = State::from_tree(&game, &tree).unwrap();
            let d = Demands::uniform(&game);
            let b = SubsidyAssignment::zero(game.graph());
            for i in 0..game.num_players() {
                let wc = weighted_player_cost(&game, &state, &d, &b, i);
                let uc = player_cost(&game, &state, &b, i);
                assert!((wc - uc).abs() < 1e-9, "player {i}: {wc} vs {uc}");
            }
            assert_eq!(
                weighted_is_equilibrium(&game, &state, &d, &b),
                equilibrium::is_equilibrium(&game, &state, &b)
            );
        }
    }

    #[test]
    fn costs_sum_to_social_cost_under_any_demands() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(405);
        let g = generators::random_connected(7, 0.5, &mut rng, 0.3..3.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let tree = kruskal(game.graph()).unwrap();
        let (state, _) = State::from_tree(&game, &tree).unwrap();
        let d = Demands::new(
            &game,
            (0..game.num_players())
                .map(|_| rng.random_range(0.1..5.0))
                .collect(),
        )
        .unwrap();
        let b = SubsidyAssignment::zero(game.graph());
        let total: f64 = (0..game.num_players())
            .map(|i| weighted_player_cost(&game, &state, &d, &b, i))
            .sum();
        assert!((total - state.weight(game.graph())).abs() < 1e-9);
    }

    #[test]
    fn heavy_player_changes_the_equilibrium() {
        // Four-cycle, root 0, tree {(0,1), (1,2), (3,0)}. Unweighted,
        // node 2 pays 1.2 + 1/2 on her path but only 0.9 + 1/2 on the
        // detour 2-3-0 ⇒ she deviates. Give node 1 a huge demand: node 2's
        // share of (0,1) collapses to ~0 (1.201 total), below the detour's
        // 1.4 ⇒ the same tree becomes a weighted equilibrium.
        let mut g = ndg_graph::Graph::new(4);
        let e0 = g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let e1 = g.add_edge(NodeId(1), NodeId(2), 1.2).unwrap();
        let _e2 = g.add_edge(NodeId(2), NodeId(3), 0.9).unwrap();
        let e3 = g.add_edge(NodeId(3), NodeId(0), 1.0).unwrap();
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let tree = vec![e0, e1, e3];
        let (state, _) = State::from_tree(&game, &tree).unwrap();
        let b = SubsidyAssignment::zero(game.graph());
        let unweighted = Demands::uniform(&game);
        assert!(!weighted_is_equilibrium(&game, &state, &unweighted, &b));
        let skewed = Demands::new(&game, vec![1000.0, 1.0, 1.0]).unwrap();
        assert!(weighted_is_equilibrium(&game, &state, &skewed, &b));
    }

    #[test]
    fn weighted_best_response_optimal_against_dfs() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(406);
        let g = generators::random_connected(6, 0.6, &mut rng, 0.2..3.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let tree = kruskal(game.graph()).unwrap();
        let (state, _) = State::from_tree(&game, &tree).unwrap();
        let d = Demands::new(
            &game,
            (0..game.num_players())
                .map(|_| rng.random_range(0.5..4.0))
                .collect(),
        )
        .unwrap();
        let b = SubsidyAssignment::zero(game.graph());
        for i in 0..game.num_players() {
            let (_, br) = weighted_best_response(&game, &state, &d, &b, i);
            // DFS over all simple paths.
            let brute = brute_best(&game, &state, &d, &b, i);
            assert!((br - brute).abs() < 1e-9, "player {i}: {br} vs {brute}");
        }
    }

    fn brute_best(
        game: &NetworkDesignGame,
        state: &State,
        d: &Demands,
        b: &SubsidyAssignment,
        i: usize,
    ) -> f64 {
        let g = game.graph();
        let p = game.players()[i];
        let mut best = f64::INFINITY;
        let mut visited = vec![false; g.node_count()];
        let mut path = Vec::new();
        dfs(
            g,
            game,
            state,
            d,
            b,
            i,
            p.source,
            p.terminal,
            &mut visited,
            &mut path,
            &mut best,
        );
        return best;

        #[allow(clippy::too_many_arguments)]
        fn dfs(
            g: &ndg_graph::Graph,
            game: &NetworkDesignGame,
            state: &State,
            d: &Demands,
            b: &SubsidyAssignment,
            i: usize,
            cur: NodeId,
            target: NodeId,
            visited: &mut Vec<bool>,
            path: &mut Vec<EdgeId>,
            best: &mut f64,
        ) {
            if cur == target {
                let c = weighted_deviation_cost(game, state, d, b, i, path);
                *best = best.min(c);
                return;
            }
            visited[cur.index()] = true;
            for &(nb, e) in g.neighbors(cur) {
                if !visited[nb.index()] {
                    path.push(e);
                    dfs(g, game, state, d, b, i, nb, target, visited, path, best);
                    path.pop();
                }
            }
            visited[cur.index()] = false;
        }
    }
}
