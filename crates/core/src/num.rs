//! Tolerant floating-point comparisons.
//!
//! Every equilibrium inequality in this workspace is tested through these
//! helpers so that LP-solver noise (≈1e-9 relative) can never flip a Nash
//! check. The paper's arguments are exact; we reproduce them in `f64` with
//! an explicit absolute tolerance.

/// Absolute tolerance used across all equilibrium and cost comparisons.
pub const EPS: f64 = 1e-7;

/// `a ≤ b` up to tolerance.
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b + EPS
}

/// `a ≥ b` up to tolerance.
#[inline]
pub fn approx_ge(a: f64, b: f64) -> bool {
    a + EPS >= b
}

/// `a = b` up to tolerance.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS
}

/// `a < b` by more than the tolerance (a *strict*, noise-proof improvement).
#[inline]
pub fn strictly_lt(a: f64, b: f64) -> bool {
    a < b - EPS
}

/// `a > b` by more than the tolerance.
#[inline]
pub fn strictly_gt(a: f64, b: f64) -> bool {
    a > b + EPS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparisons_respect_tolerance() {
        assert!(approx_le(1.0, 1.0));
        assert!(approx_le(1.0 + EPS / 2.0, 1.0));
        assert!(!approx_le(1.0 + 2.0 * EPS, 1.0));
        assert!(approx_ge(1.0, 1.0 + EPS / 2.0));
        assert!(approx_eq(1.0, 1.0 + EPS / 2.0));
        assert!(!approx_eq(1.0, 1.0 + 2.0 * EPS));
    }

    #[test]
    fn strict_comparisons_need_margin() {
        assert!(!strictly_lt(1.0, 1.0));
        assert!(!strictly_lt(1.0 - EPS / 2.0, 1.0));
        assert!(strictly_lt(1.0 - 2.0 * EPS, 1.0));
        assert!(strictly_gt(1.0 + 2.0 * EPS, 1.0));
        assert!(!strictly_gt(1.0 + EPS / 2.0, 1.0));
    }

    #[test]
    fn strict_and_approx_are_complements() {
        for &(a, b) in &[(0.0, 1.0), (1.0, 0.0), (1.0, 1.0), (2.5, 2.5 + EPS)] {
            assert_eq!(strictly_lt(a, b), !approx_ge(a, b));
            assert_eq!(strictly_gt(a, b), !approx_le(a, b));
        }
    }
}
