//! Incremental best-response engine: O(Δ)-per-move potential and cost
//! maintenance plus bound-filtered best responses.
//!
//! The game admits Rosenthal's exact potential
//! `Φ(T; b) = Σ_a (w_a − b_a) H_{n_a(T)}`, so a move by player `i` changes
//! `Φ` only on the edges whose usage count changed: an edge leaving `i`'s
//! path (usage `k → k−1`) contributes `−(w−b)/k`, an edge joining it
//! (usage `k → k+1`) contributes `+(w−b)/(k+1)`. The same usage deltas
//! drive the co-users' cost shares. This engine maintains Φ, every
//! player's current cost, and per-edge user lists under those deltas —
//! `O(|old path| + |new path| + Σ_{a changed} n_a)` per move instead of the
//! naive full `O(m)` potential recompute — and cross-checks against the
//! from-scratch [`rosenthal_potential`] behind `debug_assert`s.
//!
//! Best responses go through three layers:
//!
//! 1. the maintained Lemma-2 view ([`crate::recert`]): on tree-induced
//!    broadcast states the certifier absorbs each elementary move in
//!    O(Δ) and answers the *global* "is anything left to do?" question
//!    ([`IncrementalDynamics::maintained_equilibrium`]) — the moment it
//!    turns true, every remaining turn declines in O(1) without probing
//!    (Lemma 2 is global-only: a single player's clean margins do *not*
//!    certify that she cannot improve, so no per-player skipping);
//! 2. a shared *optimistic* Dijkstra ([`crate::bounds`]) that certifies
//!    which players provably cannot improve — the sound replacement for
//!    a "dirty player" cache (a player's best response can route through
//!    an edge it never touched before, so cache invalidation by touched
//!    edges is unsound; the admissible bound is not);
//! 3. an exact per-player Dijkstra in a reusable
//!    [`ndg_graph::DijkstraWorkspace`] for the few suspects that survive
//!    the filter.
//!
//! The probe/Dijkstra weight functions resolve both factors of the
//! deviation weight in O(1): the player's own-path membership via
//! generation-stamped marks, and the shared `(w−b)/(n+1)` factor via a
//! `w_opt` array maintained under the same O(Δ) usage deltas as Φ (the
//! naive path recomputes both per relaxed edge — an `O(depth)` scan plus
//! a division).
//!
//! All per-player decisions (which player moves, which path, whether the
//! improvement is strict) evaluate exactly the same floating-point
//! expressions as the naive driver, so dynamics traces are reproduced
//! move for move. The one exception is Lemma 2 certification — batched
//! ([`crate::batch`]) or maintained ([`crate::recert`]) — on tree-induced
//! broadcast states, whose "no move left" answer matches the per-player
//! scan up to a per-constraint tolerance caveat documented in
//! [`crate::batch`].

use crate::batch::{BatchCertification, BatchCertifier};
use crate::bounds::OptimisticBounds;
use crate::cost::player_cost;
use crate::game::NetworkDesignGame;
use crate::num::strictly_lt;
use crate::potential::rosenthal_potential;
use crate::recert::{CertifierStats, IncrementalCertifier};
use crate::state::State;
use crate::subsidy::SubsidyAssignment;
use ndg_graph::paths::DijkstraWorkspace;
use ndg_graph::EdgeId;

/// Profiling counters (no-ops until `ndg_obs::install`): all-players
/// certification attempts answered by the maintained O(Δ) Lemma-2 view
/// vs falling back to a scratch sweep because a non-elementary move
/// invalidated it.
static DYN_MAINTAINED_CERTS: ndg_obs::Counter = ndg_obs::Counter::new("dyn_maintained_total");
static DYN_SCRATCH_FALLBACKS: ndg_obs::Counter =
    ndg_obs::Counter::new("dyn_scratch_fallback_total");

/// Recompute costs and potential from scratch every this many moves, to
/// keep incremental float drift far below the comparison tolerances.
const REFRESH_EVERY: usize = 4096;

/// Fully re-tighten the optimistic bounds (one Dijkstra per terminal)
/// every this many moves; in between they are repaired incrementally and
/// only drift looser.
const BOUNDS_REFRESH_EVERY: usize = 8;

/// Attempt the batched Lemma 2 certification in
/// [`IncrementalDynamics::best_improving_move`] only when at least this
/// many players survive the cached-bound filter — below that, the
/// per-player probes are cheaper than an `O(m·depth)` sweep.
const BATCH_CERTIFY_MIN_CANDIDATES: usize = 32;

/// The deviation weight `(w_e − b_e)/(n_e(T) + 1 − n_e^i(T))` with both
/// factors resolved in O(1): own-path membership via the generation
/// marks, the shared `/(n+1)` factor via the maintained `w_opt` cache.
/// Bit-identical to [`crate::cost::deviation_weight`] — every probe,
/// exact Dijkstra and path-cost sum in this engine must route through
/// this one expression.
#[inline]
fn marked_deviation_weight(
    marks: &[u32],
    gen: u32,
    state: &State,
    residual: &[f64],
    w_opt: &[f64],
    e: EdgeId,
) -> f64 {
    let ei = e.index();
    if marks[ei] == gen {
        residual[ei] / state.usage(e) as f64
    } else {
        w_opt[ei]
    }
}

/// One applied improving move.
#[derive(Clone, Copy, Debug)]
pub struct MoveRecord {
    /// The player that moved.
    pub player: usize,
    /// Her cost before the move.
    pub old_cost: f64,
    /// Her cost after the move (the best-response cost).
    pub new_cost: f64,
}

/// Incrementally maintained dynamics state over a fixed game + subsidies.
pub struct IncrementalDynamics<'a> {
    game: &'a NetworkDesignGame,
    b: &'a SubsidyAssignment,
    state: State,
    /// Rosenthal potential, maintained by per-edge usage deltas.
    phi: f64,
    /// `costs[i]` = player `i`'s current cost, maintained incrementally.
    costs: Vec<f64>,
    /// `users[e]` = players whose current path contains `e`.
    users: Vec<Vec<u32>>,
    bounds: OptimisticBounds,
    bounds_fresh: bool,
    ws: DijkstraWorkspace,
    /// Best-response path scratch (the pending move's path).
    path_buf: Vec<EdgeId>,
    /// Winner's path scratch for max-gain selection.
    best_path_buf: Vec<EdgeId>,
    /// Max-gain candidate scratch: `(gain upper bound, player, current)`.
    cand_buf: Vec<(f64, u32, f64)>,
    /// Generation-stamped membership marks for the old/new path edge sets.
    in_old: Vec<u32>,
    in_new: Vec<u32>,
    mark_gen: u32,
    /// Generation-stamped membership marks for the probing player's own
    /// path (O(1) `n_a^i(T)` lookups inside probe/Dijkstra weight fns).
    path_mark: Vec<u32>,
    path_gen: u32,
    /// `residual[e] = w_e − b_e`, precomputed once (game and subsidies
    /// are fixed for the engine's lifetime).
    residual: Vec<f64>,
    /// `w_opt[e] = residual[e]/(n_e(T)+1)` — the non-own-path deviation
    /// weight — maintained under the same O(Δ) usage deltas as Φ. Probe
    /// and Dijkstra weight fns read it instead of recomputing the
    /// division per edge relaxation (identical expression, same floats).
    w_opt: Vec<f64>,
    /// The pending move's usage-increased edges (for bound repair).
    added_buf: Vec<EdgeId>,
    /// Invariant: player `i`'s best response ≥ `br_lb[i]` −
    /// [`crate::bounds::BOUND_SLACK`] (the slack absorbs all float
    /// noise). Anchored by exact evaluations and probes; when an edge
    /// gets cheaper (usage increase), each player's bound is lowered to
    /// the reverse-triangle bound on paths through that edge instead of
    /// being discarded — the sound replacement for a dirty-player cache,
    /// and the reason repeated certification is O(1) per player.
    br_lb: Vec<f64>,
    moves_applied: usize,
    /// Batched Lemma-2 certification for tree-induced broadcast states
    /// (one `O(m·depth)` sweep for all players instead of `n` probes) —
    /// the scratch path, used when the maintained view is invalid.
    batch: BatchCertifier,
    /// Incrementally maintained tree view + Lemma-2 margins (see
    /// [`crate::recert`]): consulted through the *global* equilibrium
    /// answer, which working rounds read in O(1) memoized per turn.
    recert: IncrementalCertifier,
    /// Move count at the last *failed* adoption attempt — at most one
    /// O(m) re-adoption attempt per state version.
    recert_stamp: usize,
    /// Memoized "the current state is a maintained-certified equilibrium"
    /// answer (reset on every applied move / re-adoption), so a round of
    /// post-convergence queries costs one O(Δ)-incremental certification
    /// plus O(1) per player.
    maintained_eq: Option<bool>,
    /// Established-set deltas of the pending move (usage `1 → 0` /
    /// `0 → 1`), collected for [`IncrementalCertifier::on_move`].
    dropped_est_buf: Vec<EdgeId>,
    added_est_buf: Vec<EdgeId>,
}

impl<'a> IncrementalDynamics<'a> {
    /// Build the engine over `state` (costs, potential and user lists are
    /// computed from scratch once here).
    pub fn new(game: &'a NetworkDesignGame, state: State, b: &'a SubsidyAssignment) -> Self {
        let g = game.graph();
        let n = game.num_players();
        let m = g.edge_count();
        let mut users: Vec<Vec<u32>> = vec![Vec::new(); m];
        for i in 0..n {
            for &e in state.path(i) {
                users[e.index()].push(i as u32);
            }
        }
        let costs = (0..n).map(|i| player_cost(game, &state, b, i)).collect();
        let phi = rosenthal_potential(game, &state, b);
        let residual: Vec<f64> = g.edge_ids().map(|e| b.residual(g, e)).collect();
        let w_opt: Vec<f64> = g
            .edge_ids()
            .map(|e| residual[e.index()] / (state.usage(e) + 1) as f64)
            .collect();
        let mut this = IncrementalDynamics {
            game,
            b,
            phi,
            costs,
            users,
            bounds: OptimisticBounds::new(game),
            bounds_fresh: false,
            ws: DijkstraWorkspace::new(g.node_count()),
            path_buf: Vec::new(),
            best_path_buf: Vec::new(),
            cand_buf: Vec::new(),
            in_old: vec![0; m],
            in_new: vec![0; m],
            mark_gen: 0,
            path_mark: vec![0; m],
            path_gen: 0,
            residual,
            w_opt,
            added_buf: Vec::new(),
            br_lb: vec![f64::NEG_INFINITY; n],
            moves_applied: 0,
            batch: BatchCertifier::new(),
            recert: IncrementalCertifier::new(),
            recert_stamp: usize::MAX,
            maintained_eq: None,
            dropped_est_buf: Vec::new(),
            added_est_buf: Vec::new(),
            state,
        };
        this.try_revalidate();
        this
    }

    /// The current state.
    #[inline]
    pub fn state(&self) -> &State {
        &self.state
    }

    /// Discard every incrementally maintained view and rebuild the engine
    /// over `state` from scratch, as if freshly constructed with
    /// [`new`](Self::new). The serving layer's delta sessions call this
    /// after replaying a journal onto a patched instance: the caches this
    /// engine carries (usage lists, potential, bound anchors, maintained
    /// certifier view) are all derived from `(game, b, state)` at
    /// construction time, so a wholesale rebuild is the only adoption that
    /// is *specified* to be bitwise-equal to a cold start — the property
    /// the divergence audits check.
    pub fn readopt(&mut self, state: State) {
        let game = self.game;
        let b = self.b;
        *self = Self::new(game, state, b);
    }

    /// Consume the engine, returning the final state.
    pub fn into_state(self) -> State {
        self.state
    }

    /// The incrementally maintained Rosenthal potential `Φ(T; b)`.
    #[inline]
    pub fn potential(&self) -> f64 {
        self.phi
    }

    /// Player `i`'s incrementally maintained current cost.
    #[inline]
    pub fn cached_cost(&self, i: usize) -> f64 {
        self.costs[i]
    }

    /// Player `i`'s current cost, recomputed from her path (the exact
    /// floats the naive driver would see).
    #[inline]
    pub fn current_cost(&self, i: usize) -> f64 {
        player_cost(self.game, &self.state, self.b, i)
    }

    fn ensure_bounds(&mut self) {
        if !self.bounds_fresh {
            self.bounds.refresh(self.game, &self.state, self.b);
            self.bounds_fresh = true;
            // The fresh optimistic surface may beat stale cached anchors.
            for i in 0..self.game.num_players() {
                self.br_lb[i] = self.br_lb[i].max(self.bounds.lower(i));
            }
        }
    }

    /// Cached lower bound on `i`'s best response in the current state.
    #[inline]
    fn effective_br_lb(&self, i: usize) -> f64 {
        self.br_lb[i]
    }

    /// Anchor `i`'s cached best-response lower bound at `value` (valid
    /// for the current state).
    #[inline]
    fn anchor_br_lb(&mut self, i: usize, value: f64) {
        self.br_lb[i] = value;
    }

    /// Stamp player `i`'s current path edges into the generation-marked
    /// membership array, so the per-edge deviation weight inside her
    /// probe/Dijkstra resolves `n_a^i(T)` in O(1) instead of scanning her
    /// path per relaxed edge ([`crate::cost::deviation_weight`] is the
    /// same float expression with an `O(|path|)` membership scan — a
    /// hidden `O(depth)` factor on every edge relaxation).
    fn mark_path(&mut self, i: usize) {
        if self.path_gen == u32::MAX {
            self.path_mark.fill(0);
            self.path_gen = 0;
        }
        self.path_gen += 1;
        let gen = self.path_gen;
        for &e in self.state.path(i) {
            self.path_mark[e.index()] = gen;
        }
    }

    /// Exact best response of `i` into `path_buf`; returns its cost —
    /// bit-identical to [`crate::equilibrium::best_response_with`] (same
    /// Dijkstra, same weight floats; membership via the path marks).
    fn best_response_exact(&mut self, i: usize) -> f64 {
        self.mark_path(i);
        let g = self.game.graph();
        let player = self.game.players()[i];
        let (ws, marks, gen, state, residual, w_opt) = (
            &mut self.ws,
            &self.path_mark,
            self.path_gen,
            &self.state,
            &self.residual,
            &self.w_opt,
        );
        let weight = |e| marked_deviation_weight(marks, gen, state, residual, w_opt, e);
        ws.run(g, player.source, Some(player.terminal), weight);
        let reached = ws.path_into(g, player.terminal, &mut self.path_buf);
        assert!(reached, "game validation guarantees a connecting path");
        self.path_buf.iter().map(|&e| weight(e)).sum()
    }

    /// Bounded A* probe for player `i`: `Some(value)` if some deviation
    /// path costs strictly below `bound`, `None` as a certificate that
    /// none does. Explores only the corridor of near-improving routes —
    /// the reason certification rounds need no per-player Dijkstra.
    /// Requires fresh-or-repaired bounds.
    fn probe_below(&mut self, i: usize, bound: f64) -> Option<f64> {
        self.mark_path(i);
        let g = self.game.graph();
        let player = self.game.players()[i];
        let (ws, marks, gen, state, residual, w_opt) = (
            &mut self.ws,
            &self.path_mark,
            self.path_gen,
            &self.state,
            &self.residual,
            &self.w_opt,
        );
        ws.astar_below(
            g,
            player.source,
            player.terminal,
            self.bounds.heuristic(i),
            bound,
            |e| marked_deviation_weight(marks, gen, state, residual, w_opt, e),
        )
    }

    /// Whether `i` might strictly improve on `current`, layered cheapest
    /// first: the O(1) cached bound, then the bounded A* probe (whose
    /// answer re-anchors the cache). `Some(value)` must be confirmed by
    /// the exact Dijkstra.
    ///
    /// The probe runs with *headroom* above the decision threshold: a
    /// certificate at exactly the threshold would be invalidated by any
    /// subsequent knockdown, so buying a certificate 10% higher keeps the
    /// player cache-certified across other players' small moves at a
    /// modest widening of the A* corridor.
    fn probe_improvement(&mut self, i: usize, current: f64) -> Option<f64> {
        let threshold = current - crate::num::EPS + crate::bounds::BOUND_SLACK;
        if self.effective_br_lb(i).partial_cmp(&threshold) != Some(std::cmp::Ordering::Less) {
            return None;
        }
        let headroom = 0.1 * current.abs();
        let outcome = self.probe_below(i, threshold + headroom);
        match outcome {
            None => {
                self.anchor_br_lb(i, threshold + headroom);
                None
            }
            Some(value) => {
                self.anchor_br_lb(i, value);
                if value < threshold {
                    Some(value)
                } else {
                    None
                }
            }
        }
    }

    /// Give player `i` a chance to move (the round-robin step): returns
    /// the applied move, or `None` if she has no strict improvement. The
    /// cache/probe layers certify most "no" answers in O(1) / a few node
    /// expansions; only genuine improvers pay for the naive-identical
    /// Dijkstra that picks the actual path.
    pub fn try_improve(&mut self, i: usize) -> Option<MoveRecord> {
        let current = self.current_cost(i);
        self.ensure_bounds();
        self.probe_improvement(i, current)?;
        let cost = self.best_response_exact(i);
        self.anchor_br_lb(i, cost);
        if !strictly_lt(cost, current) {
            return None;
        }
        self.apply_pending_move(i, current, cost);
        Some(MoveRecord {
            player: i,
            old_cost: current,
            new_cost: cost,
        })
    }

    /// Re-adopt the live state into the maintained certifier if a
    /// non-elementary move invalidated it — at most one O(m) attempt per
    /// state version (failed attempts are not retried until the next
    /// move).
    fn try_revalidate(&mut self) {
        if self.recert.is_valid() || self.recert_stamp == self.moves_applied {
            return;
        }
        self.recert_stamp = self.moves_applied;
        if self.recert.adopt(self.game, &self.state, self.b) {
            self.maintained_eq = None;
        }
    }

    /// Whether the *current* state is a maintained-certified equilibrium:
    /// `Some(true)` certifies that **no** player can strictly improve (so
    /// every remaining round-robin turn declines without probing),
    /// `Some(false)` means some maintained Lemma-2 constraint is violated
    /// (the state will keep evolving), `None` means the maintained view is
    /// invalid and the caller must use the probe/sweep path.
    ///
    /// Soundness note: Lemma 2 is a *global* criterion — a single player's
    /// clean margins do **not** certify that she cannot improve (her best
    /// deviation may enter the tree through another node's non-tree
    /// adjacency), so per-player margin skipping would change decisions.
    /// The all-players answer is exactly the sweep's and is memoized, so a
    /// post-convergence round costs one incremental certification (dirty
    /// margins only) plus O(1) per player.
    pub fn maintained_equilibrium(&mut self) -> Option<bool> {
        self.try_revalidate();
        if !self.recert.is_valid() {
            return None;
        }
        if let Some(known) = self.maintained_eq {
            return Some(known);
        }
        let eq = self
            .recert
            .equilibrium(self.game, self.b)
            .expect("view is valid");
        self.maintained_eq = Some(eq);
        Some(eq)
    }

    /// Counters describing the maintained certifier's work so far.
    pub fn certifier_stats(&self) -> CertifierStats {
        self.recert.stats()
    }

    /// Batched all-players certification attempt: the maintained Lemma-2
    /// view when it is live (bit-identical to the scratch sweep, but only
    /// dirty players are re-evaluated), else one scratch Lemma 2 sweep on
    /// tree-induced states (see [`crate::batch`]). `NotApplicable` means
    /// the caller must use the per-player path.
    pub fn batch_certify(&mut self) -> BatchCertification {
        self.try_revalidate();
        if self.recert.is_valid() {
            DYN_MAINTAINED_CERTS.inc();
            return self.recert.certify(self.game, self.b);
        }
        DYN_SCRATCH_FALLBACKS.inc();
        self.batch.certify(self.game, &self.state, self.b)
    }

    /// `true` iff the batch sweep applies *and* certifies the current
    /// state as an equilibrium. `false` means "fall back to per-player
    /// probing" — either the sweep found a violation (some player will
    /// move) or the state is not tree-induced.
    pub fn batch_certified_equilibrium(&mut self) -> bool {
        matches!(self.batch_certify(), BatchCertification::Equilibrium)
    }

    /// Apply the single best improving move (the max-gain step), or return
    /// `None` if no player can strictly improve.
    ///
    /// Exactness without n full Dijkstras: each player's gain is bounded
    /// above through the O(1) drift-corrected cache, candidates are
    /// visited in decreasing bound order, each visit tightens its bound
    /// with an A* probe before paying for the exact Dijkstra, and the
    /// scan stops as soon as the best exact gain dominates every
    /// remaining bound — typically after the single top candidate. Ties
    /// on the exact gain resolve to the smallest player index, matching
    /// the naive scan.
    pub fn best_improving_move(&mut self) -> Option<MoveRecord> {
        // Maintained certification first: after the previous move the
        // incremental view re-certified only the O(Δ) dirty margins, so
        // the final "no move left" call — the expensive one in the naive
        // scan — is answered here without touching the probe layer.
        let maintained = self.maintained_equilibrium();
        if maintained == Some(true) {
            return None;
        }
        self.ensure_bounds();
        let maintained = maintained.is_some();
        let eps = crate::num::EPS;
        let slack = crate::bounds::BOUND_SLACK;
        let mut cands = std::mem::take(&mut self.cand_buf);
        cands.clear();
        for i in 0..self.game.num_players() {
            let current = self.current_cost(i);
            let ub = current - self.effective_br_lb(i) + slack;
            if ub > eps {
                cands.push((ub, i as u32, current));
            }
        }
        cands.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));

        // (gain, i, current, cost) of the best improver found so far.
        let mut best: Option<(f64, u32, f64, f64)> = None;
        // Lazy batched certification: mid-dynamics the top-ranked candidate
        // improves immediately and no sweep is worth running, but when the
        // leading candidates all probe out empty this is almost certainly
        // the final certification call — and if the state is tree-induced,
        // one Lemma 2 sweep settles the remaining candidates at once. A
        // sweep that *does* find a violation (or a non-tree state) just
        // resumes the exact scan, so both the returned move and the
        // certified `None` match the unbatched scan decision for decision.
        let mut swept = false;
        for (scanned, &(ub, i, current)) in cands.iter().enumerate() {
            if let Some((best_gain, ..)) = best {
                if ub < best_gain {
                    break;
                }
            }
            if best.is_none() && !swept && !maintained && scanned >= BATCH_CERTIFY_MIN_CANDIDATES {
                swept = true;
                if self.batch_certified_equilibrium() {
                    self.cand_buf = cands;
                    return None;
                }
            }
            // Tighten with the corridor probe before the full Dijkstra:
            // can i beat the incumbent (or the strict-improvement floor)?
            let floor = match best {
                Some((best_gain, ..)) => current - best_gain + 2.0 * slack,
                None => current - eps + slack,
            };
            match self.probe_below(i as usize, floor) {
                None => {
                    self.anchor_br_lb(i as usize, floor);
                    continue;
                }
                Some(value) => self.anchor_br_lb(i as usize, value),
            }
            let cost = self.best_response_exact(i as usize);
            self.anchor_br_lb(i as usize, cost);
            if !strictly_lt(cost, current) {
                continue;
            }
            let gain = current - cost;
            let wins = match best {
                None => true,
                Some((bg, bi, ..)) => gain > bg || (gain == bg && i < bi),
            };
            if wins {
                best = Some((gain, i, current, cost));
                std::mem::swap(&mut self.best_path_buf, &mut self.path_buf);
            }
        }
        self.cand_buf = cands;

        let (_, i, current, cost) = best?;
        std::mem::swap(&mut self.best_path_buf, &mut self.path_buf);
        self.apply_pending_move(i as usize, current, cost);
        Some(MoveRecord {
            player: i as usize,
            old_cost: current,
            new_cost: cost,
        })
    }

    /// Whether no player has a strict improvement. The cache and A*
    /// layers only skip certified players, and any probe hit is
    /// re-checked with the naive-identical Dijkstra; on tree-induced
    /// broadcast states the answer comes from the batched Lemma 2 sweep
    /// instead, which matches the per-player scan up to the
    /// per-constraint tolerance caveat documented in [`crate::batch`].
    pub fn is_certified_equilibrium(&mut self) -> bool {
        match self.batch_certify() {
            BatchCertification::Equilibrium => return true,
            // A Lemma 2 witness is a strictly profitable deviation, so the
            // exact scan below would also answer `false`.
            BatchCertification::Violation(_) => return false,
            BatchCertification::NotApplicable => {}
        }
        self.ensure_bounds();
        for i in 0..self.game.num_players() {
            let current = self.current_cost(i);
            if self.probe_improvement(i, current).is_none() {
                continue;
            }
            let cost = self.best_response_exact(i);
            self.anchor_br_lb(i, cost);
            if strictly_lt(cost, current) {
                return false;
            }
        }
        true
    }

    /// Adopt `path_buf` as `i`'s strategy, updating Φ, costs and user
    /// lists by the per-edge usage deltas.
    fn apply_pending_move(&mut self, i: usize, old_cost: f64, new_cost: f64) {
        let g = self.game.graph();
        if self.mark_gen == u32::MAX {
            self.in_old.fill(0);
            self.in_new.fill(0);
            self.mark_gen = 0;
        }
        self.mark_gen += 1;
        let gen = self.mark_gen;
        for &e in &self.path_buf {
            self.in_new[e.index()] = gen;
        }
        for &e in self.state.path(i) {
            self.in_old[e.index()] = gen;
        }

        // Edges leaving i's path: usage k → k−1.
        self.dropped_est_buf.clear();
        for &e in self.state.path(i) {
            let ei = e.index();
            if self.in_new[ei] == gen {
                continue;
            }
            let k = self.state.usage(e);
            debug_assert!(k >= 1);
            if k == 1 {
                self.dropped_est_buf.push(e); // leaves the established set
            }
            let r = self.b.residual(g, e);
            self.phi -= r / k as f64;
            self.w_opt[ei] = self.residual[ei] / k as f64; // post-usage k−1
            let list = &mut self.users[ei];
            if k > 1 {
                let delta = r / (k - 1) as f64 - r / k as f64;
                for &j in list.iter() {
                    if j as usize != i {
                        self.costs[j as usize] += delta;
                    }
                }
            }
            let pos = list
                .iter()
                .position(|&j| j as usize == i)
                .expect("user lists track paths");
            list.swap_remove(pos);
        }

        // Edges joining i's path: usage k → k+1.
        self.added_buf.clear();
        self.added_est_buf.clear();
        for &e in &self.path_buf {
            let ei = e.index();
            if self.in_old[ei] == gen {
                continue;
            }
            let k = self.state.usage(e);
            if k == 0 {
                self.added_est_buf.push(e); // joins the established set
            }
            let r = self.b.residual(g, e);
            self.phi += r / (k + 1) as f64;
            self.w_opt[ei] = self.residual[ei] / (k + 2) as f64; // post-usage k+1
            if k > 0 {
                let delta = r / (k + 1) as f64 - r / k as f64;
                for &j in self.users[ei].iter() {
                    self.costs[j as usize] += delta;
                }
            }
            self.users[ei].push(i as u32);
            self.added_buf.push(e);
        }

        self.state.swap_path(i, &mut self.path_buf);
        self.costs[i] = new_cost;
        self.moves_applied += 1;

        // Maintain the Lemma-2 view under the same O(Δ) deltas: an
        // elementary swap updates it in place, anything else invalidates
        // it and a later `try_revalidate` re-adopts the live state.
        self.maintained_eq = None;
        self.recert.on_move(
            self.game,
            &self.state,
            self.b,
            self.game.players()[i].source,
            &self.dropped_est_buf,
            &self.added_est_buf,
        );

        // Repair the heuristic surface for the cheapened edges (keeps it
        // admissible at all times), then weaken each cached best-response
        // bound only as far as those edges warrant. A full per-terminal
        // Dijkstra re-tightens the surface periodically.
        if self.bounds_fresh {
            let added = std::mem::take(&mut self.added_buf);
            self.bounds
                .update_for_added_edges(self.game, &self.state, self.b, &added);
            self.lower_anchors_for_added_edges(&added);
            self.added_buf = added;
        }
        if self.moves_applied.is_multiple_of(BOUNDS_REFRESH_EVERY) {
            self.bounds_fresh = false;
        }
        // The mover sits at her exact best response (her own strategy does
        // not enter her deviation denominators), so her anchor is tight.
        self.anchor_br_lb(i, new_cost);

        // Exact-potential identity: ΔΦ must equal Δcost_i. The from-scratch
        // recompute stays behind debug_assert, exactly as the naive driver
        // kept it on its hot path.
        debug_assert!(
            {
                let full = rosenthal_potential(self.game, &self.state, self.b);
                (full - self.phi).abs() <= 1e-6 * (1.0 + full.abs())
            },
            "incremental Φ drifted from the from-scratch recompute"
        );
        debug_assert!(
            (self.costs[i] - self.current_cost(i)).abs() <= 1e-9 * (1.0 + new_cost.abs()),
            "mover's cached cost disagrees with her path cost"
        );
        let _ = old_cost;

        if self.moves_applied.is_multiple_of(REFRESH_EVERY) {
            self.refresh_from_scratch();
        }
    }

    /// Weaken cached best-response anchors for the cheapened edges: any
    /// *new* improving route for player `j` must pass through some added
    /// edge `a = (u, v)`, and such a route costs at least
    /// `max(0, h(s_j) − h(u)) + w_min(a) + h(v)` (reverse triangle
    /// inequality under the consistent heuristic, plus the edge's minimum
    /// possible share). Anchors drop only to that bound — usually staying
    /// above the certification threshold, which is what keeps certified
    /// players certified across other players' moves.
    fn lower_anchors_for_added_edges(&mut self, added: &[EdgeId]) {
        let g = self.game.graph();
        let players = self.game.players();
        // Second valid bound: a path can cross each cheapened edge at most
        // once, so no best response improves by more than the sum of the
        // worst-case per-edge share drops (usage k → k+1 takes a user's
        // share from r/k to r/(k+1)). Crowded edges drop by O(r/k²),
        // which is what keeps anchors alive through late-stage moves.
        let move_drop: f64 = added
            .iter()
            .map(|&e| {
                let r = self.b.residual(g, e);
                let k = self.state.usage(e); // post-move usage ≥ 1
                if k <= 1 {
                    r / 2.0
                } else {
                    r / ((k - 1) * k) as f64
                }
            })
            .sum();
        for j in 0..players.len() {
            if self.br_lb[j] == f64::NEG_INFINITY {
                continue;
            }
            let h = self.bounds.heuristic(j);
            let hs = h[players[j].source.index()];
            // Reverse-triangle bound over the cheapened edges.
            let mut through = f64::INFINITY;
            for &e in added {
                let r = self.b.residual(g, e);
                let k = self.state.usage(e);
                let w_min = r / (k + 1) as f64;
                let (u, v) = g.endpoints(e);
                let (hu, hv) = (h[u.index()], h[v.index()]);
                let lb = ((hs - hu).max(0.0) + w_min + hv).min((hs - hv).max(0.0) + w_min + hu);
                through = through.min(lb);
            }
            let reverse_triangle = self.br_lb[j].min(through);
            let decrement = self.br_lb[j] - move_drop;
            self.br_lb[j] = reverse_triangle.max(decrement);
        }
    }

    /// Recompute Φ and all costs from scratch (drift control).
    fn refresh_from_scratch(&mut self) {
        self.phi = rosenthal_potential(self.game, &self.state, self.b);
        for i in 0..self.game.num_players() {
            self.costs[i] = self.current_cost(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subsidy::SubsidyAssignment;
    use ndg_graph::{generators, kruskal, NodeId};
    use rand::prelude::*;

    fn random_setup(
        rng: &mut StdRng,
        n_range: std::ops::Range<usize>,
    ) -> (NetworkDesignGame, State, SubsidyAssignment) {
        let n = rng.random_range(n_range);
        let g = generators::random_connected(n, 0.5, rng, 0.2..3.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let tree = kruskal(game.graph()).unwrap();
        let (state, _) = State::from_tree(&game, &tree).unwrap();
        let mut b = SubsidyAssignment::zero(game.graph());
        for e in game.graph().edge_ids() {
            if rng.random_bool(0.3) {
                let w = game.graph().weight(e);
                b.set(game.graph(), e, rng.random_range(0.0..=w));
            }
        }
        (game, state, b)
    }

    #[test]
    fn engine_moves_match_naive_best_responses() {
        use crate::equilibrium::best_response;
        let mut rng = StdRng::seed_from_u64(611);
        for _ in 0..20 {
            let (game, state, b) = random_setup(&mut rng, 3..9);
            let mut engine = IncrementalDynamics::new(&game, state.clone(), &b);
            let mut naive_state = state;
            // Round-robin until convergence on both; every decision must
            // agree exactly.
            let mut safety = 0;
            loop {
                safety += 1;
                assert!(safety < 10_000, "dynamics did not converge");
                let mut any = false;
                for i in 0..game.num_players() {
                    let naive_current = player_cost(&game, &naive_state, &b, i);
                    let (naive_path, naive_cost) = best_response(&game, &naive_state, &b, i);
                    let naive_moves = strictly_lt(naive_cost, naive_current);
                    let rec = engine.try_improve(i);
                    assert_eq!(naive_moves, rec.is_some(), "player {i} decision diverged");
                    if let Some(rec) = rec {
                        assert_eq!(rec.new_cost, naive_cost, "best-response cost diverged");
                        naive_state.replace_path(i, naive_path);
                        assert_eq!(engine.state().path(i), naive_state.path(i));
                        any = true;
                    }
                }
                if !any {
                    break;
                }
            }
            assert!(engine.is_certified_equilibrium());
            assert!(crate::equilibrium::is_equilibrium(
                &game,
                engine.state(),
                &b
            ));
        }
    }

    #[test]
    fn readopt_is_indistinguishable_from_a_fresh_engine() {
        // Dirty an engine's caches with random moves, then `readopt` it
        // onto a fresh state and race it against a newly constructed
        // engine over the same state: every subsequent decision, cost and
        // potential must agree to the bit. This is the contract the
        // serving layer's journal replay leans on.
        let mut rng = StdRng::seed_from_u64(619);
        for _ in 0..20 {
            let (game, state, b) = random_setup(&mut rng, 3..9);
            let mut engine = IncrementalDynamics::new(&game, state, &b);
            for _ in 0..rng.random_range(0..32usize) {
                let i = rng.random_range(0..game.num_players());
                let _ = engine.try_improve(i);
            }
            // The engine's own (post-moves) state stands in for the
            // replayed journal's outcome.
            let state2 = engine.state().clone();
            let mut fresh = IncrementalDynamics::new(&game, state2.clone(), &b);
            engine.readopt(state2);
            assert_eq!(
                engine.potential().to_bits(),
                fresh.potential().to_bits(),
                "Φ diverged at adoption"
            );
            for _ in 0..64 {
                let i = rng.random_range(0..game.num_players());
                let a = engine.try_improve(i);
                let f = fresh.try_improve(i);
                match (a, f) {
                    (None, None) => {}
                    (Some(a), Some(f)) => {
                        assert_eq!(a.player, f.player);
                        assert_eq!(a.new_cost.to_bits(), f.new_cost.to_bits());
                    }
                    (a, f) => panic!("readopted {a:?} vs fresh {f:?}"),
                }
                assert_eq!(engine.state().path(i), fresh.state().path(i));
                assert_eq!(engine.potential().to_bits(), fresh.potential().to_bits());
                assert_eq!(
                    engine.is_certified_equilibrium(),
                    fresh.is_certified_equilibrium()
                );
            }
        }
    }

    #[test]
    fn max_gain_matches_naive_argmax() {
        use crate::equilibrium::best_response;
        let mut rng = StdRng::seed_from_u64(613);
        for _ in 0..20 {
            let (game, state, b) = random_setup(&mut rng, 3..9);
            let mut engine = IncrementalDynamics::new(&game, state.clone(), &b);
            let mut naive_state = state;
            let mut safety = 0;
            loop {
                safety += 1;
                assert!(safety < 10_000, "dynamics did not converge");
                // Naive argmax scan.
                let mut naive_best: Option<(usize, Vec<ndg_graph::EdgeId>, f64)> = None;
                for i in 0..game.num_players() {
                    let current = player_cost(&game, &naive_state, &b, i);
                    let (path, cost) = best_response(&game, &naive_state, &b, i);
                    if strictly_lt(cost, current) {
                        let gain = current - cost;
                        if naive_best.as_ref().is_none_or(|(_, _, g)| gain > *g) {
                            naive_best = Some((i, path, gain));
                        }
                    }
                }
                let rec = engine.best_improving_move();
                match (naive_best, rec) {
                    (None, None) => break,
                    (Some((i, path, _)), Some(rec)) => {
                        assert_eq!(i, rec.player, "max-gain player diverged");
                        naive_state.replace_path(i, path);
                        assert_eq!(engine.state().path(i), naive_state.path(i));
                    }
                    (a, b) => panic!("max-gain diverged: naive {a:?} vs engine {b:?}"),
                }
            }
        }
    }

    #[test]
    fn incremental_potential_and_costs_track_ground_truth() {
        let mut rng = StdRng::seed_from_u64(617);
        for _ in 0..15 {
            let (game, state, b) = random_setup(&mut rng, 3..10);
            let mut engine = IncrementalDynamics::new(&game, state, &b);
            loop {
                let mut any = false;
                for i in 0..game.num_players() {
                    if engine.try_improve(i).is_some() {
                        any = true;
                        let full = rosenthal_potential(&game, engine.state(), &b);
                        assert!(
                            (engine.potential() - full).abs() < 1e-9,
                            "Φ drift: {} vs {}",
                            engine.potential(),
                            full
                        );
                        for j in 0..game.num_players() {
                            assert!(
                                (engine.cached_cost(j) - engine.current_cost(j)).abs() < 1e-9,
                                "cost drift for player {j}"
                            );
                        }
                    }
                }
                if !any {
                    break;
                }
            }
        }
    }
}
