//! Exact Nash-equilibrium verification for arbitrary network design games.
//!
//! A state `T` is a pure Nash equilibrium of the extension with subsidies
//! `b` iff no player's best response improves on her current cost. Best
//! responses are shortest paths in the paper's separation-oracle graph
//! `H_i` with weights `w'_a = (w_a − b_a)/(n_a(T) + 1 − n_a^i(T))`
//! (Theorem 1). Most per-player checks are discharged by a bounded A*
//! probe under the shared optimistic heuristic (see [`crate::bounds`]);
//! only probe hits pay for the exact Dijkstra.

use crate::bounds::OptimisticBounds;
use crate::cost::{deviation_cost, player_cost};
use crate::game::NetworkDesignGame;
use crate::num::strictly_lt;
use crate::state::State;
use crate::subsidy::SubsidyAssignment;
use ndg_graph::paths::DijkstraWorkspace;
use ndg_graph::EdgeId;

/// A profitable unilateral deviation, as a counterexample witness.
#[derive(Clone, Debug)]
pub struct Deviation {
    /// Deviating player.
    pub player: usize,
    /// Her cost in the current state.
    pub current_cost: f64,
    /// Cost of the improving path.
    pub new_cost: f64,
    /// The improving path.
    pub path: Vec<EdgeId>,
}

/// [`best_response`] into caller-provided scratch: the Dijkstra runs in
/// `ws` (no allocation in steady state) and the path lands in `path_out`.
/// Returns the deviation cost of that path.
pub fn best_response_with(
    game: &NetworkDesignGame,
    state: &State,
    b: &SubsidyAssignment,
    i: usize,
    ws: &mut DijkstraWorkspace,
    path_out: &mut Vec<EdgeId>,
) -> f64 {
    let g = game.graph();
    let player = game.players()[i];
    ws.run(g, player.source, Some(player.terminal), |e| {
        crate::cost::deviation_weight(game, state, b, i, e)
    });
    let reached = ws.path_into(g, player.terminal, path_out);
    assert!(reached, "game validation guarantees a connecting path");
    deviation_cost(game, state, b, i, path_out)
}

/// Best response of player `i` against `state` in the extension with `b`:
/// the minimum-cost `sᵢ → tᵢ` path under deviation weights, with its cost.
pub fn best_response(
    game: &NetworkDesignGame,
    state: &State,
    b: &SubsidyAssignment,
    i: usize,
) -> (Vec<EdgeId>, f64) {
    let mut ws = DijkstraWorkspace::new(game.graph().node_count());
    let mut path = Vec::new();
    let cost = best_response_with(game, state, b, i, &mut ws, &mut path);
    (path, cost)
}

/// The best profitable deviation of any player (minimum player index among
/// those with a strict improvement), or `None` if `state` is an equilibrium.
///
/// One optimistic Dijkstra per distinct terminal builds an admissible A*
/// heuristic (see [`crate::bounds`]); a bounded corridor probe then
/// certifies most players as unable to improve after a handful of node
/// expansions, and only probe hits pay for the exact best-response
/// Dijkstra — scanned in index order so the returned witness matches the
/// naive definition.
pub fn find_deviation(
    game: &NetworkDesignGame,
    state: &State,
    b: &SubsidyAssignment,
) -> Option<Deviation> {
    let g = game.graph();
    let mut bounds = OptimisticBounds::new(game);
    bounds.refresh(game, state, b);
    let mut ws = DijkstraWorkspace::new(g.node_count());
    let mut path = Vec::new();
    for i in 0..game.num_players() {
        let current = player_cost(game, state, b, i);
        let threshold = current - crate::num::EPS + crate::bounds::BOUND_SLACK;
        if bounds.lower(i).partial_cmp(&threshold) != Some(std::cmp::Ordering::Less) {
            continue;
        }
        let player = game.players()[i];
        let hit = ws.astar_below(
            g,
            player.source,
            player.terminal,
            bounds.heuristic(i),
            threshold,
            |e| crate::cost::deviation_weight(game, state, b, i, e),
        );
        if hit.is_none() {
            continue;
        }
        let new_cost = best_response_with(game, state, b, i, &mut ws, &mut path);
        if strictly_lt(new_cost, current) {
            return Some(Deviation {
                player: i,
                current_cost: current,
                new_cost,
                path: path.clone(),
            });
        }
    }
    None
}

/// Whether `state` is a pure Nash equilibrium of the extension with `b`.
pub fn is_equilibrium(game: &NetworkDesignGame, state: &State, b: &SubsidyAssignment) -> bool {
    find_deviation(game, state, b).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::State;
    use ndg_graph::{generators, NodeId};

    /// Theorem 11's cycle instance: unit cycle, tree = the path; the player
    /// across the missing edge deviates iff her path cost H_n > 1.
    #[test]
    fn cycle_instance_unstable_without_subsidies() {
        let n = 6; // H_6 ≈ 2.45 > 1
        let g = generators::cycle_graph(n + 1, 1.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let tree: Vec<EdgeId> = (0..n as u32).map(EdgeId).collect();
        let (state, _) = State::from_tree(&game, &tree).unwrap();
        let b = SubsidyAssignment::zero(game.graph());
        let dev = find_deviation(&game, &state, &b).expect("must be unstable");
        // The deviator is the far-end player (node n), jumping to the
        // closing edge at cost 1.
        assert_eq!(dev.player, game.player_of_node(NodeId(n as u32)).unwrap());
        assert!((dev.new_cost - 1.0).abs() < 1e-9);
        assert!(dev.current_cost > 2.0);
        assert!(!is_equilibrium(&game, &state, &b));
    }

    #[test]
    fn full_subsidies_stabilize_anything() {
        let n = 6;
        let g = generators::cycle_graph(n + 1, 1.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let tree: Vec<EdgeId> = (0..n as u32).map(EdgeId).collect();
        let (state, _) = State::from_tree(&game, &tree).unwrap();
        let b = SubsidyAssignment::all_or_nothing(game.graph(), &tree);
        assert!(is_equilibrium(&game, &state, &b));
    }

    #[test]
    fn triangle_path_tree_unstable_star_tree_stable() {
        // Unit triangle with root 0. Tree {(0,1),(1,2)}: node 2 pays
        // 1 + 1/2 and can defect to the direct edge for 1 ⇒ unstable.
        // Tree {(0,1),(2,0)}: both players pay 1, any detour costs 1.5
        // ⇒ equilibrium.
        let g = generators::cycle_graph(3, 1.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let b = SubsidyAssignment::zero(game.graph());

        let path_tree = vec![EdgeId(0), EdgeId(1)];
        let (state, _) = State::from_tree(&game, &path_tree).unwrap();
        let dev = find_deviation(&game, &state, &b).expect("node 2 defects");
        assert_eq!(dev.player, game.player_of_node(NodeId(2)).unwrap());
        assert!((dev.new_cost - 1.0).abs() < 1e-9);

        let star_tree = vec![EdgeId(0), EdgeId(2)];
        let (state, _) = State::from_tree(&game, &star_tree).unwrap();
        assert!(is_equilibrium(&game, &state, &b));
    }

    #[test]
    fn star_tree_always_equilibrium() {
        // Uniform star from the root: each player uses her own spoke and
        // any deviation costs at least as much.
        let g = generators::star_graph(6, 2.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let tree: Vec<EdgeId> = game.graph().edge_ids().collect();
        let (state, _) = State::from_tree(&game, &tree).unwrap();
        let b = SubsidyAssignment::zero(game.graph());
        assert!(is_equilibrium(&game, &state, &b));
    }

    #[test]
    fn best_response_is_optimal_against_brute_force() {
        // On small random games, the Dijkstra best response must match the
        // cheapest among all simple paths (enumerated by DFS).
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..10 {
            let n = rng.random_range(3..7usize);
            let g = generators::random_connected(n, 0.5, &mut rng, 0.2..3.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let tree = ndg_graph::kruskal(game.graph()).unwrap();
            let (state, _) = State::from_tree(&game, &tree).unwrap();
            let b = SubsidyAssignment::zero(game.graph());
            for i in 0..game.num_players() {
                let (_, br_cost) = best_response(&game, &state, &b, i);
                let brute = cheapest_simple_path_cost(&game, &state, &b, i);
                assert!(
                    (br_cost - brute).abs() < 1e-9,
                    "player {i}: dijkstra {br_cost} vs brute {brute}"
                );
            }
        }
    }

    /// Enumerate all simple s→t paths by DFS and return the min deviation
    /// cost (test helper; exponential).
    fn cheapest_simple_path_cost(
        game: &NetworkDesignGame,
        state: &State,
        b: &SubsidyAssignment,
        i: usize,
    ) -> f64 {
        let g = game.graph();
        let p = game.players()[i];
        let mut best = f64::INFINITY;
        let mut visited = vec![false; g.node_count()];
        let mut stack_path: Vec<EdgeId> = Vec::new();
        #[allow(clippy::too_many_arguments)]
        fn dfs(
            g: &ndg_graph::Graph,
            game: &NetworkDesignGame,
            state: &State,
            b: &SubsidyAssignment,
            i: usize,
            cur: NodeId,
            target: NodeId,
            visited: &mut Vec<bool>,
            path: &mut Vec<EdgeId>,
            best: &mut f64,
        ) {
            if cur == target {
                let c = deviation_cost(game, state, b, i, path);
                if c < *best {
                    *best = c;
                }
                return;
            }
            visited[cur.index()] = true;
            for &(nb, e) in g.neighbors(cur) {
                if !visited[nb.index()] {
                    path.push(e);
                    dfs(g, game, state, b, i, nb, target, visited, path, best);
                    path.pop();
                }
            }
            visited[cur.index()] = false;
        }
        dfs(
            g,
            game,
            state,
            b,
            i,
            p.source,
            p.terminal,
            &mut visited,
            &mut stack_path,
            &mut best,
        );
        best
    }

    use crate::cost::deviation_cost;
}
