//! Batched all-players equilibrium certification for tree-induced states.
//!
//! The per-player certification path ([`crate::equilibrium::find_deviation`]
//! and the probe layer inside [`crate::incremental::IncrementalDynamics`])
//! costs one bounded A* corridor probe per player per check. For *broadcast*
//! games whose live state happens to be induced by a spanning tree — which
//! is where best-response dynamics started from a tree spends most of its
//! time, and always where it ends — Lemma 2 collapses the whole check into
//! one sweep over the non-tree edges: the state is an equilibrium iff no
//! ordered non-tree adjacency `(u, v)` lets player `u` profit by rerouting
//! through `(u, v)` and then along the tree. The sweep costs `O(m · depth)`
//! *total* (all players at once, arbitrary subsidies, zero-weight edges
//! included) instead of `n` probes, and parallelizes over the non-tree
//! edges on [`ndg_exec`].
//!
//! [`BatchCertifier::certify`] performs the three steps — detect whether
//! the live state is tree-induced, rebuild the rooted view, run the
//! generalized Lemma 2 sweep — and reports
//! [`BatchCertification::NotApplicable`] whenever the preconditions fail
//! (non-broadcast game, e.g. multicast with Steiner nodes, where the
//! Lemma 2 exchange argument breaks because deviations may pivot at
//! non-player nodes; or a mid-dynamics state whose path union contains a
//! cycle). Callers fall back to the per-player probes in that case.
//!
//! **Tolerance caveat.** Lemma 2 is exact in exact arithmetic, but the
//! `f64` check applies the tolerance *per non-tree adjacency* while the
//! per-player reference path applies it once to the best response
//! (`strictly_lt`, [`crate::num::EPS`]). A multi-hop deviation whose
//! improvement exceeds `EPS` only through the telescoped sum of several
//! sub-`EPS` single-hop slacks could therefore be certified here and
//! rejected there — the same boundary the long-standing
//! [`crate::broadcast::is_tree_equilibrium`]-vs-
//! [`crate::equilibrium::is_equilibrium`] equivalence already lives with.
//! The property tests below (and the seed's Lemma 2 equivalence test) pin
//! agreement on random instances; workloads with adversarially aligned
//! `≈1e-7` margins should stick to the per-player path.

use crate::broadcast::{lemma2_violation_eps_with, Lemma2Violation};
use crate::game::NetworkDesignGame;
use crate::state::State;
use crate::subsidy::SubsidyAssignment;
use ndg_graph::{EdgeId, RootedTree};

/// Outcome of a batched certification attempt.
#[derive(Clone, Debug)]
pub enum BatchCertification {
    /// The state is tree-induced and no player can strictly improve.
    Equilibrium,
    /// The state is tree-induced and the sweep found a profitable
    /// deviation (the lowest-edge-id Lemma 2 witness).
    Violation(Lemma2Violation),
    /// The batch path does not apply (non-broadcast game or the state is
    /// not induced by a spanning tree); the caller must use the
    /// per-player path.
    NotApplicable,
}

/// Reusable scratch for tree-induced detection + Lemma 2 sweeps.
#[derive(Debug, Default)]
pub struct BatchCertifier {
    /// Established-edge scratch (kept across calls to avoid reallocating).
    established: Vec<EdgeId>,
    ex: Option<ndg_exec::Executor>,
}

impl BatchCertifier {
    /// Certifier running sweeps on the environment-default executor
    /// (`NDG_THREADS` override honoured).
    pub fn new() -> Self {
        BatchCertifier {
            established: Vec::new(),
            ex: None,
        }
    }

    /// Certifier with an explicit executor (e.g. [`ndg_exec::Executor::sequential`]).
    pub fn with_executor(ex: ndg_exec::Executor) -> Self {
        BatchCertifier {
            established: Vec::new(),
            ex: Some(ex),
        }
    }

    /// Whether `state` is induced by a spanning tree of the broadcast
    /// game's graph; returns the rooted view if so.
    ///
    /// For a broadcast game this is exactly "the established edges form a
    /// spanning tree": every player's strategy is a simple path inside
    /// that tree, and a simple path between two nodes of a tree is the
    /// unique tree path, so the usage counts coincide with the subtree
    /// sizes Lemma 2 expects.
    fn tree_view(&mut self, game: &NetworkDesignGame, state: &State) -> Option<RootedTree> {
        let root = game.root()?;
        let g = game.graph();
        self.established.clear();
        for e in g.edge_ids() {
            if state.usage(e) > 0 {
                self.established.push(e);
                if self.established.len() >= g.node_count() {
                    return None; // more edges than any spanning tree has
                }
            }
        }
        if self.established.len() + 1 != g.node_count() {
            return None;
        }
        RootedTree::new(g, &self.established, root).ok()
    }

    /// Attempt the batched certification of `state` under subsidies `b`.
    pub fn certify(
        &mut self,
        game: &NetworkDesignGame,
        state: &State,
        b: &SubsidyAssignment,
    ) -> BatchCertification {
        self.certify_eps(game, state, b, crate::num::EPS)
    }

    /// [`certify`](Self::certify) with an explicit tolerance (a constraint
    /// counts as violated only when `lhs > rhs + eps`).
    pub fn certify_eps(
        &mut self,
        game: &NetworkDesignGame,
        state: &State,
        b: &SubsidyAssignment,
        eps: f64,
    ) -> BatchCertification {
        if !game.is_broadcast() {
            return BatchCertification::NotApplicable;
        }
        let Some(rt) = self.tree_view(game, state) else {
            return BatchCertification::NotApplicable;
        };
        let ex = self.ex.unwrap_or_else(ndg_exec::Executor::from_env);
        match lemma2_violation_eps_with(game, &rt, b, eps, &ex) {
            Some(v) => BatchCertification::Violation(v),
            None => BatchCertification::Equilibrium,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::{find_deviation, is_equilibrium};
    use crate::state::State;
    use ndg_graph::{generators, NodeId};
    use rand::prelude::*;

    /// A uniformly-ish random spanning tree: Kruskal under shuffled edge
    /// priorities.
    fn random_tree(g: &ndg_graph::Graph, rng: &mut StdRng) -> Vec<EdgeId> {
        let mut order: Vec<EdgeId> = g.edge_ids().collect();
        order.shuffle(rng);
        let mut uf = ndg_graph::UnionFind::new(g.node_count());
        let mut tree = Vec::with_capacity(g.node_count() - 1);
        for e in order {
            let (u, v) = g.endpoints(e);
            if uf.union(u.index(), v.index()) {
                tree.push(e);
            }
        }
        tree.sort();
        tree
    }

    fn random_subsidies(g: &ndg_graph::Graph, rng: &mut StdRng) -> SubsidyAssignment {
        let mut b = SubsidyAssignment::zero(g);
        for e in g.edge_ids() {
            match rng.random_range(0..4u32) {
                0 => {}                        // untouched
                1 => b.set(g, e, g.weight(e)), // fully subsidized: residual 0
                _ => {
                    let w = g.weight(e);
                    b.set(g, e, rng.random_range(0.0..=w));
                }
            }
        }
        b
    }

    #[test]
    fn batch_agrees_with_find_deviation_on_broadcast_trees() {
        // The satellite property test: batched Lemma 2 certification must
        // agree with the per-player exact checker on random broadcast tree
        // states with random subsidies (including zero-weight edges via
        // the 0.0.. weight range and fully-subsidized residual-0 edges).
        let mut rng = StdRng::seed_from_u64(900);
        let mut certifier = BatchCertifier::new();
        let (mut eq, mut neq) = (0usize, 0usize);
        for _ in 0..80 {
            let n = rng.random_range(3..11usize);
            let g = generators::random_connected(n, 0.5, &mut rng, 0.0..3.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let tree = random_tree(game.graph(), &mut rng);
            let (state, _) = State::from_tree(&game, &tree).unwrap();
            let b = random_subsidies(game.graph(), &mut rng);
            let exact_dev = find_deviation(&game, &state, &b);
            match certifier.certify(&game, &state, &b) {
                BatchCertification::Equilibrium => {
                    assert!(
                        exact_dev.is_none(),
                        "batch certified but find_deviation improves: {exact_dev:?}"
                    );
                    eq += 1;
                }
                BatchCertification::Violation(v) => {
                    let dev = exact_dev.expect("batch violation but exact equilibrium");
                    // The witness's lhs must match that player's current
                    // cost to 1e-9, and her claimed deviation must be
                    // genuinely available (rhs is a real path's cost, so
                    // her best response is at least as good).
                    let u = game.player_of_node(v.node).unwrap();
                    let cur = crate::cost::player_cost(&game, &state, &b, u);
                    assert!((v.lhs - cur).abs() < 1e-9, "lhs {} vs cost {}", v.lhs, cur);
                    let (_, best) = crate::equilibrium::best_response(&game, &state, &b, u);
                    assert!(best <= v.rhs + 1e-9, "best {} above rhs {}", best, v.rhs);
                    let _ = dev;
                    neq += 1;
                }
                BatchCertification::NotApplicable => {
                    panic!("broadcast tree state must be batch-certifiable")
                }
            }
        }
        assert!(eq > 0 && neq > 0, "eq={eq} neq={neq}: sample too one-sided");
    }

    #[test]
    fn batch_is_thread_count_invariant() {
        let mut rng = StdRng::seed_from_u64(901);
        for _ in 0..25 {
            let n = rng.random_range(3..10usize);
            let g = generators::random_connected(n, 0.6, &mut rng, 0.0..3.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let tree = random_tree(game.graph(), &mut rng);
            let (state, _) = State::from_tree(&game, &tree).unwrap();
            let b = random_subsidies(game.graph(), &mut rng);
            let mut seq = BatchCertifier::with_executor(ndg_exec::Executor::sequential());
            let mut par = BatchCertifier::with_executor(ndg_exec::Executor::new(8));
            match (
                seq.certify(&game, &state, &b),
                par.certify(&game, &state, &b),
            ) {
                (BatchCertification::Equilibrium, BatchCertification::Equilibrium) => {}
                (BatchCertification::Violation(a), BatchCertification::Violation(c)) => {
                    // Identical witness: same player, same edge, same floats.
                    assert_eq!(a.node, c.node);
                    assert_eq!(a.via, c.via);
                    assert_eq!(a.to, c.to);
                    assert_eq!(a.lhs.to_bits(), c.lhs.to_bits());
                    assert_eq!(a.rhs.to_bits(), c.rhs.to_bits());
                }
                (a, c) => panic!("thread counts disagree: {a:?} vs {c:?}"),
            }
        }
    }

    #[test]
    fn multicast_and_non_tree_states_fall_back() {
        let mut rng = StdRng::seed_from_u64(902);
        let mut certifier = BatchCertifier::new();
        for _ in 0..30 {
            let n = rng.random_range(4..10usize);
            let g = generators::random_connected(n, 0.5, &mut rng, 0.0..3.0);
            // Multicast: a strict subset of nodes are terminals.
            let k = rng.random_range(1..n - 1);
            let terminals: Vec<NodeId> = (1..=k as u32).map(NodeId).collect();
            let game = crate::multicast::multicast(g, NodeId(0), &terminals).unwrap();
            let tree = random_tree(game.graph(), &mut rng);
            let (state, _) = State::from_tree(&game, &tree).unwrap();
            let b = random_subsidies(game.graph(), &mut rng);
            assert!(matches!(
                certifier.certify(&game, &state, &b),
                BatchCertification::NotApplicable
            ));
            // The engine-level certification (batch + fallback) must still
            // agree with the reference checker on multicast tree states.
            let mut engine = crate::incremental::IncrementalDynamics::new(&game, state.clone(), &b);
            assert_eq!(
                engine.is_certified_equilibrium(),
                is_equilibrium(&game, &state, &b)
            );
        }
    }

    #[test]
    fn mid_dynamics_cycle_state_is_not_applicable() {
        // Triangle, both players on the long way around: the union of the
        // two paths is the whole cycle — not a tree.
        let g = generators::cycle_graph(3, 1.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        // Tree state: both players route through edge (0,1).
        let state = State::new(&game, vec![vec![EdgeId(0)], vec![EdgeId(1), EdgeId(0)]]).unwrap();
        // Cyclic state: player of node 1 goes the long way (1-2-0) while
        // the player of node 2 goes 2-1-0 — all three edges established.
        let cyc = State::new(
            &game,
            vec![vec![EdgeId(1), EdgeId(2)], vec![EdgeId(1), EdgeId(0)]],
        )
        .unwrap();
        let b = SubsidyAssignment::zero(game.graph());
        let mut certifier = BatchCertifier::new();
        assert!(matches!(
            certifier.certify(&game, &cyc, &b),
            BatchCertification::NotApplicable
        ));
        // The plain tree state stays certifiable.
        assert!(!matches!(
            certifier.certify(&game, &state, &b),
            BatchCertification::NotApplicable
        ));
    }
}
