//! Network design games (Section 2 of the paper).
//!
//! A game is an edge-weighted undirected graph plus one `(sᵢ, tᵢ)` pair per
//! player; a *broadcast game* has a distinguished root, one player per
//! non-root node, and every player's terminal is the root.

use ndg_graph::{Graph, NodeId};
use std::fmt;

/// One player's connectivity requirement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Player {
    /// Source node `sᵢ`.
    pub source: NodeId,
    /// Terminal node `tᵢ`.
    pub terminal: NodeId,
}

/// Errors raised when constructing a game.
#[derive(Clone, Debug, PartialEq)]
pub enum GameError {
    /// A player's endpoint is out of range.
    BadNode { node: u32, node_count: usize },
    /// A player has `source == terminal` (a trivial requirement we reject).
    TrivialPlayer { player: usize },
    /// A player's endpoints are not connected in the graph, so the player
    /// has an empty strategy set.
    NoStrategy { player: usize },
    /// Broadcast constructor: the graph must be connected.
    Disconnected,
    /// Broadcast constructor: the graph needs at least 2 nodes.
    TooSmall,
}

impl fmt::Display for GameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GameError::BadNode { node, node_count } => {
                write!(
                    f,
                    "player endpoint {node} out of range ({node_count} nodes)"
                )
            }
            GameError::TrivialPlayer { player } => {
                write!(f, "player {player} has source == terminal")
            }
            GameError::NoStrategy { player } => {
                write!(f, "player {player} has no connecting path")
            }
            GameError::Disconnected => write!(f, "broadcast game requires a connected graph"),
            GameError::TooSmall => write!(f, "broadcast game requires at least 2 nodes"),
        }
    }
}

impl std::error::Error for GameError {}

/// A fair-cost-sharing network design game.
#[derive(Clone, Debug)]
pub struct NetworkDesignGame {
    graph: Graph,
    players: Vec<Player>,
    /// `Some(root)` iff this game was built by [`NetworkDesignGame::broadcast`].
    broadcast_root: Option<NodeId>,
    /// Broadcast only: `player_of_node[v]` = index of the player whose
    /// source is `v` (`usize::MAX` for the root).
    player_of_node: Vec<usize>,
}

impl NetworkDesignGame {
    /// General game from explicit player pairs.
    pub fn new(graph: Graph, players: Vec<Player>) -> Result<Self, GameError> {
        let n = graph.node_count();
        // Connectivity per player (one BFS per component labeling).
        let component = component_labels(&graph);
        for (i, p) in players.iter().enumerate() {
            for x in [p.source, p.terminal] {
                if x.index() >= n {
                    return Err(GameError::BadNode {
                        node: x.0,
                        node_count: n,
                    });
                }
            }
            if p.source == p.terminal {
                return Err(GameError::TrivialPlayer { player: i });
            }
            if component[p.source.index()] != component[p.terminal.index()] {
                return Err(GameError::NoStrategy { player: i });
            }
        }
        Ok(NetworkDesignGame {
            graph,
            players,
            broadcast_root: None,
            player_of_node: Vec::new(),
        })
    }

    /// Broadcast game: one player per non-root node, all terminals = `root`.
    ///
    /// Players are ordered by increasing source node id (skipping the root),
    /// matching the paper's "player associated with node u" convention.
    pub fn broadcast(graph: Graph, root: NodeId) -> Result<Self, GameError> {
        let n = graph.node_count();
        if root.index() >= n {
            return Err(GameError::BadNode {
                node: root.0,
                node_count: n,
            });
        }
        if n < 2 {
            return Err(GameError::TooSmall);
        }
        if !graph.is_connected() {
            return Err(GameError::Disconnected);
        }
        let mut players = Vec::with_capacity(n - 1);
        let mut player_of_node = vec![usize::MAX; n];
        for v in graph.nodes() {
            if v != root {
                player_of_node[v.index()] = players.len();
                players.push(Player {
                    source: v,
                    terminal: root,
                });
            }
        }
        Ok(NetworkDesignGame {
            graph,
            players,
            broadcast_root: Some(root),
            player_of_node,
        })
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The players.
    #[inline]
    pub fn players(&self) -> &[Player] {
        &self.players
    }

    /// Number of players `n`.
    #[inline]
    pub fn num_players(&self) -> usize {
        self.players.len()
    }

    /// Whether this game was constructed as a broadcast game.
    #[inline]
    pub fn is_broadcast(&self) -> bool {
        self.broadcast_root.is_some()
    }

    /// The broadcast root, if any.
    #[inline]
    pub fn root(&self) -> Option<NodeId> {
        self.broadcast_root
    }

    /// Broadcast only: the player associated with node `v` (`None` for the
    /// root or non-broadcast games).
    pub fn player_of_node(&self, v: NodeId) -> Option<usize> {
        self.broadcast_root?;
        match self.player_of_node.get(v.index()) {
            Some(&i) if i != usize::MAX => Some(i),
            _ => None,
        }
    }
}

fn component_labels(g: &Graph) -> Vec<usize> {
    let mut uf = ndg_graph::UnionFind::new(g.node_count());
    for (_, e) in g.edges() {
        uf.union(e.u.index(), e.v.index());
    }
    (0..g.node_count()).map(|v| uf.find(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndg_graph::generators;

    #[test]
    fn broadcast_orders_players_by_node() {
        let g = generators::cycle_graph(5, 1.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(2)).unwrap();
        assert_eq!(game.num_players(), 4);
        assert!(game.is_broadcast());
        assert_eq!(game.root(), Some(NodeId(2)));
        let sources: Vec<u32> = game.players().iter().map(|p| p.source.0).collect();
        assert_eq!(sources, vec![0, 1, 3, 4]);
        assert!(game.players().iter().all(|p| p.terminal == NodeId(2)));
        assert_eq!(game.player_of_node(NodeId(3)), Some(2));
        assert_eq!(game.player_of_node(NodeId(2)), None);
    }

    #[test]
    fn broadcast_rejects_disconnected_and_tiny() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        assert!(matches!(
            NetworkDesignGame::broadcast(g, NodeId(0)),
            Err(GameError::Disconnected)
        ));
        assert!(matches!(
            NetworkDesignGame::broadcast(Graph::new(1), NodeId(0)),
            Err(GameError::TooSmall)
        ));
        let g2 = generators::path_graph(3, 1.0);
        assert!(matches!(
            NetworkDesignGame::broadcast(g2, NodeId(9)),
            Err(GameError::BadNode { .. })
        ));
    }

    #[test]
    fn general_game_validation() {
        let g = generators::path_graph(4, 1.0);
        let ok = NetworkDesignGame::new(
            g.clone(),
            vec![Player {
                source: NodeId(0),
                terminal: NodeId(3),
            }],
        );
        assert!(ok.is_ok());
        assert!(!ok.unwrap().is_broadcast());

        assert!(matches!(
            NetworkDesignGame::new(
                g.clone(),
                vec![Player {
                    source: NodeId(1),
                    terminal: NodeId(1),
                }],
            ),
            Err(GameError::TrivialPlayer { player: 0 })
        ));

        let mut disc = Graph::new(4);
        disc.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        disc.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        assert!(matches!(
            NetworkDesignGame::new(
                disc,
                vec![Player {
                    source: NodeId(0),
                    terminal: NodeId(3),
                }],
            ),
            Err(GameError::NoStrategy { player: 0 })
        ));
    }
}
