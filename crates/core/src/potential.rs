//! Rosenthal's potential function.
//!
//! `Φ(T; b) = Σ_a (w_a − b_a) · H_{n_a(T)}` is an exact potential for the
//! extension game: a unilateral deviation changes `Φ` by exactly the
//! change in the deviator's cost, so best-response dynamics strictly
//! descends `Φ` and every local minimum is a Nash equilibrium
//! (Anshelevich et al.; Section 1 of the paper). Moreover
//! `C(T; b) ≤ Φ(T; b) ≤ H_n · C(T; b)` where `C` is the subsidized social
//! cost — the inequality behind the `H_n` price-of-stability bound.

use crate::game::NetworkDesignGame;
use crate::state::State;
use crate::subsidy::SubsidyAssignment;
use ndg_graph::harmonic;

/// `Φ(T; b) = Σ_a (w_a − b_a) H_{n_a(T)}`.
pub fn rosenthal_potential(game: &NetworkDesignGame, state: &State, b: &SubsidyAssignment) -> f64 {
    let g = game.graph();
    g.edge_ids()
        .map(|e| {
            let n_a = state.usage(e);
            if n_a == 0 {
                0.0
            } else {
                b.residual(g, e) * harmonic(n_a as u64)
            }
        })
        .sum()
}

/// The sandwich `C ≤ Φ ≤ H_n · C` (with `C` the subsidized social cost);
/// returns `(C, Φ, H_n·C)` for inspection.
pub fn potential_sandwich(
    game: &NetworkDesignGame,
    state: &State,
    b: &SubsidyAssignment,
) -> (f64, f64, f64) {
    let c = crate::cost::social_cost_subsidized(game, state, b);
    let phi = rosenthal_potential(game, state, b);
    let hn = harmonic(game.num_players() as u64);
    (c, phi, hn * c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::player_cost;
    use crate::equilibrium::best_response;
    use crate::state::State;
    use ndg_graph::{generators, kruskal, NodeId};
    use rand::prelude::*;

    /// The defining property: Φ(T') − Φ(T) = cost_i(T') − cost_i(T) when
    /// only player i's strategy changes.
    #[test]
    fn exact_potential_property_randomized() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..40 {
            let n = rng.random_range(3..9usize);
            let g = generators::random_connected(n, 0.5, &mut rng, 0.2..3.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let tree = kruskal(game.graph()).unwrap();
            let (mut state, _) = State::from_tree(&game, &tree).unwrap();
            let mut b = SubsidyAssignment::zero(game.graph());
            // Random fractional subsidies to stress the subsidized variant.
            for e in game.graph().edge_ids() {
                if rng.random_bool(0.3) {
                    let w = game.graph().weight(e);
                    b.set(game.graph(), e, rng.random_range(0.0..=w));
                }
            }
            let i = rng.random_range(0..game.num_players());
            let phi_before = rosenthal_potential(&game, &state, &b);
            let cost_before = player_cost(&game, &state, &b, i);
            let (new_path, predicted_cost) = best_response(&game, &state, &b, i);
            state.replace_path(i, new_path);
            let phi_after = rosenthal_potential(&game, &state, &b);
            let cost_after = player_cost(&game, &state, &b, i);
            assert!(
                (cost_after - predicted_cost).abs() < 1e-9,
                "deviation-cost prediction"
            );
            assert!(
                ((phi_after - phi_before) - (cost_after - cost_before)).abs() < 1e-9,
                "Δφ {} != Δcost {}",
                phi_after - phi_before,
                cost_after - cost_before
            );
        }
    }

    #[test]
    fn sandwich_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let n = rng.random_range(3..10usize);
            let g = generators::random_connected(n, 0.4, &mut rng, 0.2..3.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let tree = kruskal(game.graph()).unwrap();
            let (state, _) = State::from_tree(&game, &tree).unwrap();
            let b = SubsidyAssignment::zero(game.graph());
            let (c, phi, hn_c) = potential_sandwich(&game, &state, &b);
            assert!(c <= phi + 1e-9, "C={c} > Φ={phi}");
            assert!(phi <= hn_c + 1e-9, "Φ={phi} > H_n·C={hn_c}");
        }
    }

    #[test]
    fn potential_of_empty_usage_edges_is_zero() {
        let g = generators::cycle_graph(4, 1.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let tree: Vec<_> = (0..3).map(ndg_graph::EdgeId).collect();
        let (state, _) = State::from_tree(&game, &tree).unwrap();
        let b = SubsidyAssignment::zero(game.graph());
        // Φ = Σ over the 3 path edges with usages 3,2,1 → H_3 + H_2 + H_1.
        let want = harmonic(3) + harmonic(2) + harmonic(1);
        assert!((rosenthal_potential(&game, &state, &b) - want).abs() < 1e-12);
    }
}
