//! Broadcast-game fast path: Lemma 2 equilibrium checking.
//!
//! For a broadcast game and a spanning tree `T`, Lemma 2 reduces the
//! (a-priori exponential) equilibrium condition to one constraint per
//! *ordered* non-tree adjacency `(u, v)`:
//!
//! ```text
//!   Σ_{a∈T_u} (w_a−b_a)/n_a(T)  ≤  w_(u,v) − b_(u,v)
//!                                  + Σ_{a∈T_v} (w_a−b_a)/(n_a(T)+1−n_a^u(T))
//! ```
//!
//! With root-path cost prefixes and LCA decomposition each constraint is
//! evaluated in O(depth). The denominators come from subtree sizes:
//! `n_a(T) = |subtree below a|` for every tree edge.

use crate::game::NetworkDesignGame;
use crate::subsidy::SubsidyAssignment;
use ndg_graph::{EdgeId, NodeId, RootedTree};

/// A violated Lemma 2 constraint: player `node` profits by routing through
/// the non-tree edge `via` to `to` and then along `T_to`.
#[derive(Clone, Debug)]
pub struct Lemma2Violation {
    /// The deviating player's node `u`.
    pub node: NodeId,
    /// The non-tree edge `(u, v)` she switches onto.
    pub via: EdgeId,
    /// The entry node `v`.
    pub to: NodeId,
    /// Her current cost `cost_u(T; b)`.
    pub lhs: f64,
    /// The deviation cost (right-hand side of the constraint).
    pub rhs: f64,
}

/// The minimal rooted-tree interface the Lemma 2 arithmetic reads.
///
/// Implemented by [`RootedTree`] (from-scratch views, as built by
/// [`crate::batch::BatchCertifier`]) and by the maintained view inside
/// [`crate::recert::IncrementalCertifier`]. Routing both through the same
/// generic [`deviation_rhs_on`] guarantees the two certification paths
/// evaluate bit-identical floating-point expressions — the property the
/// `recert` tests pin down to the bit.
pub trait TreeView {
    /// The root node.
    fn root(&self) -> NodeId;
    /// Parent of `v` with the connecting edge; `None` for the root.
    fn parent(&self, v: NodeId) -> Option<(NodeId, EdgeId)>;
    /// `n_a(T)` for the edge `a` from `v` to its parent: the number of
    /// nodes in the subtree rooted at `v`, including `v`.
    fn subtree_size(&self, v: NodeId) -> u32;
    /// Lowest common ancestor of `u` and `v`.
    fn lca(&self, u: NodeId, v: NodeId) -> NodeId;
}

impl TreeView for RootedTree {
    fn root(&self) -> NodeId {
        RootedTree::root(self)
    }
    fn parent(&self, v: NodeId) -> Option<(NodeId, EdgeId)> {
        RootedTree::parent(self, v)
    }
    fn subtree_size(&self, v: NodeId) -> u32 {
        RootedTree::subtree_size(self, v)
    }
    fn lca(&self, u: NodeId, v: NodeId) -> NodeId {
        RootedTree::lca(self, u, v)
    }
}

/// `cost_v(T; b)` for every node `v`: the cost of the root path with fair
/// shares `(w_a − b_a)/n_a(T)` (0 at the root).
pub fn root_path_costs(
    game: &NetworkDesignGame,
    rt: &RootedTree,
    b: &SubsidyAssignment,
) -> Vec<f64> {
    let g = game.graph();
    let mut cost = vec![0.0f64; g.node_count()];
    for &v in rt.preorder() {
        if let Some((p, e)) = rt.parent(v) {
            cost[v.index()] = cost[p.index()] + b.residual(g, e) / rt.subtree_size(v) as f64;
        }
    }
    cost
}

/// Right-hand side of the Lemma 2 constraint for player `u` deviating via
/// the non-tree edge `e = (u, v)`: `w_e − b_e` plus the cost of `T_v` with
/// `+1` denominators strictly below `lca(u, v)`.
pub fn deviation_rhs(
    game: &NetworkDesignGame,
    rt: &RootedTree,
    b: &SubsidyAssignment,
    costs: &[f64],
    u: NodeId,
    v: NodeId,
    e: EdgeId,
) -> f64 {
    deviation_rhs_on(game, rt, b, costs, u, v, e)
}

/// [`deviation_rhs`] over any [`TreeView`]. Each accumulation step is the
/// same float expression in the same order regardless of the view, so a
/// maintained tree and a from-scratch [`RootedTree`] of the same state
/// produce bit-identical right-hand sides.
pub fn deviation_rhs_on<T: TreeView + ?Sized>(
    game: &NetworkDesignGame,
    t: &T,
    b: &SubsidyAssignment,
    costs: &[f64],
    u: NodeId,
    v: NodeId,
    e: EdgeId,
) -> f64 {
    let g = game.graph();
    let l = t.lca(u, v);
    let mut rhs = b.residual(g, e) + costs[l.index()];
    let mut cur = v;
    while cur != l {
        let (p, pe) = t.parent(cur).expect("cur is below the lca");
        rhs += b.residual(g, pe) / (t.subtree_size(cur) + 1) as f64;
        cur = p;
    }
    rhs
}

/// Find a violated Lemma 2 constraint, or `None` if the tree is an
/// equilibrium of the extension with `b`. Deterministic: scans non-tree
/// edges in id order, orientation `(u, v)` before `(v, u)`.
pub fn lemma2_violation(
    game: &NetworkDesignGame,
    rt: &RootedTree,
    b: &SubsidyAssignment,
) -> Option<Lemma2Violation> {
    lemma2_violation_eps(game, rt, b, crate::num::EPS)
}

/// [`lemma2_violation`] with an explicit tolerance: a constraint counts as
/// violated only when `lhs > rhs + eps`.
///
/// The Theorem 12 gadgets (built in `ndg-reductions`) have deviation
/// margins as small as `3/(n₁(n₁−3)) ≈ 1e-10` — far below the default
/// [`crate::num::EPS`] — so their verification passes a tighter tolerance.
pub fn lemma2_violation_eps(
    game: &NetworkDesignGame,
    rt: &RootedTree,
    b: &SubsidyAssignment,
    eps: f64,
) -> Option<Lemma2Violation> {
    // Sequential by default: the per-tree enumeration drivers call this on
    // tiny instances where fan-out overhead would dominate; batch callers
    // ([`crate::batch`]) pass an explicit executor instead.
    lemma2_violation_eps_with(game, rt, b, eps, &ndg_exec::Executor::sequential())
}

/// [`lemma2_violation_eps`] with an explicit [`ndg_exec::Executor`]: the
/// non-tree edges are swept in parallel chunks and the winner is the
/// **lowest-edge-id** violation, so the result is identical to the
/// sequential scan for every thread count.
pub fn lemma2_violation_eps_with(
    game: &NetworkDesignGame,
    rt: &RootedTree,
    b: &SubsidyAssignment,
    eps: f64,
    ex: &ndg_exec::Executor,
) -> Option<Lemma2Violation> {
    debug_assert!(game.is_broadcast(), "Lemma 2 applies to broadcast games");
    let g = game.graph();
    let root = rt.root();
    let costs = root_path_costs(game, rt, b);
    let in_tree = rt.edge_membership(g);
    let check = |e: EdgeId, eu: NodeId, ev: NodeId| -> Option<Lemma2Violation> {
        for (u, v) in [(eu, ev), (ev, eu)] {
            if u == root {
                continue; // the root is not a player
            }
            let lhs = costs[u.index()];
            let rhs = deviation_rhs(game, rt, b, &costs, u, v, e);
            if lhs > rhs + eps {
                return Some(Lemma2Violation {
                    node: u,
                    via: e,
                    to: v,
                    lhs,
                    rhs,
                });
            }
        }
        None
    };
    if ex.threads() == 1 {
        // Exact-sequential mode: no candidate materialization at all.
        for (e, edge) in g.edges() {
            if in_tree[e.index()] {
                continue;
            }
            if let Some(v) = check(e, edge.u, edge.v) {
                return Some(v);
            }
        }
        return None;
    }
    let candidates: Vec<(EdgeId, NodeId, NodeId)> = g
        .edges()
        .filter(|(e, _)| !in_tree[e.index()])
        .map(|(e, edge)| (e, edge.u, edge.v))
        .collect();
    ex.par_find_first(&candidates, |_, &(e, eu, ev)| check(e, eu, ev))
}

/// Whether the spanning tree is an equilibrium (Lemma 2 criterion).
pub fn is_tree_equilibrium(
    game: &NetworkDesignGame,
    rt: &RootedTree,
    b: &SubsidyAssignment,
) -> bool {
    lemma2_violation(game, rt, b).is_none()
}

/// [`is_tree_equilibrium`] with an explicit tolerance.
pub fn is_tree_equilibrium_eps(
    game: &NetworkDesignGame,
    rt: &RootedTree,
    b: &SubsidyAssignment,
    eps: f64,
) -> bool {
    lemma2_violation_eps(game, rt, b, eps).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium;
    use crate::state::State;
    use ndg_graph::{generators, kruskal};

    #[test]
    fn root_path_costs_on_a_path() {
        let g = generators::path_graph(4, 1.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let tree: Vec<EdgeId> = game.graph().edge_ids().collect();
        let (_, rt) = State::from_tree(&game, &tree).unwrap();
        let b = SubsidyAssignment::zero(game.graph());
        let costs = root_path_costs(&game, &rt, &b);
        assert!((costs[0] - 0.0).abs() < 1e-12);
        assert!((costs[1] - 1.0 / 3.0).abs() < 1e-12);
        assert!((costs[2] - (1.0 / 3.0 + 0.5)).abs() < 1e-12);
        assert!((costs[3] - (1.0 / 3.0 + 0.5 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn cycle_violation_matches_theorem_11_threshold() {
        // Unit cycle with root: the far player deviates iff H_n > 1,
        // i.e. for all n ≥ 2 (H_2 = 1.5), but not n = 1.
        for n in 2..9usize {
            let g = generators::cycle_graph(n + 1, 1.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let tree: Vec<EdgeId> = (0..n as u32).map(EdgeId).collect();
            let (_, rt) = State::from_tree(&game, &tree).unwrap();
            let b = SubsidyAssignment::zero(game.graph());
            let viol = lemma2_violation(&game, &rt, &b);
            assert!(viol.is_some(), "n={n} should violate");
            let viol = viol.unwrap();
            assert_eq!(viol.node, NodeId(n as u32));
            assert!((viol.rhs - 1.0).abs() < 1e-9);
            assert!((viol.lhs - ndg_graph::harmonic(n as u64)).abs() < 1e-9);
        }
    }

    #[test]
    fn lemma2_agrees_with_exact_checker_randomized() {
        // The heart of Lemma 2: the O(|E|)-constraint check must agree with
        // the exact per-player best-response check on random instances and
        // random subsidies.
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(2024);
        let mut eq_count = 0;
        let mut neq_count = 0;
        for _ in 0..60 {
            let n = rng.random_range(3..10usize);
            let g = generators::random_connected(n, 0.5, &mut rng, 0.2..3.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let tree = kruskal(game.graph()).unwrap();
            let (state, rt) = State::from_tree(&game, &tree).unwrap();
            // Random subsidies on tree edges.
            let mut b = SubsidyAssignment::zero(game.graph());
            for &e in &tree {
                if rng.random_bool(0.5) {
                    let w = game.graph().weight(e);
                    b.set(game.graph(), e, rng.random_range(0.0..=w));
                }
            }
            let fast = is_tree_equilibrium(&game, &rt, &b);
            let slow = equilibrium::is_equilibrium(&game, &state, &b);
            assert_eq!(fast, slow, "Lemma 2 disagrees with exact check");
            if fast {
                eq_count += 1;
            } else {
                neq_count += 1;
            }
        }
        // The sample must exercise both outcomes to be meaningful.
        assert!(
            eq_count > 0 && neq_count > 0,
            "eq={eq_count}, neq={neq_count}"
        );
    }

    #[test]
    fn subsidies_on_witness_path_fix_violation() {
        let n = 5;
        let g = generators::cycle_graph(n + 1, 1.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let tree: Vec<EdgeId> = (0..n as u32).map(EdgeId).collect();
        let (_, rt) = State::from_tree(&game, &tree).unwrap();
        // Fully subsidize the whole tree: always an equilibrium.
        let b = SubsidyAssignment::all_or_nothing(game.graph(), &tree);
        assert!(is_tree_equilibrium(&game, &rt, &b));
    }

    #[test]
    fn star_is_equilibrium() {
        let g = generators::star_graph(7, 1.5);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let tree: Vec<EdgeId> = game.graph().edge_ids().collect();
        let (_, rt) = State::from_tree(&game, &tree).unwrap();
        let b = SubsidyAssignment::zero(game.graph());
        // No non-tree edges at all ⇒ vacuously an equilibrium.
        assert!(is_tree_equilibrium(&game, &rt, &b));
    }
}
