//! Approximate equilibria (related work \[2\], Albers–Lenzner).
//!
//! A state is an *α-approximate* Nash equilibrium (`α ≥ 1`) if no player
//! can reduce her cost by more than a factor `α`:
//! `cost_i(T; b) ≤ α · cost_i(T₋ᵢ, Tᵢ'; b)` for every deviation. The
//! stability threshold `α*(T)` of a state is the smallest such `α` —
//! equivalently the largest ratio `current / best-response` over players.
//! Subsidies lower `α*`; the E-series experiments use it to quantify "how
//! far from stable" a design is before the budget kicks in.

use crate::cost::player_cost;
use crate::equilibrium::best_response_with;
use crate::game::NetworkDesignGame;
use crate::num::EPS;
use crate::state::State;
use crate::subsidy::SubsidyAssignment;
use ndg_graph::paths::DijkstraWorkspace;
use ndg_graph::EdgeId;

/// The stability threshold `α*(T; b) = max_i cost_i / best_response_i`
/// (1.0 means exact equilibrium; players with zero best-response cost and
/// zero current cost contribute 1).
///
/// The per-player best-response Dijkstras fan out on the environment
/// executor with one reusable workspace per worker (the left-fold over
/// `f64::max` is exact-associative, so the result is thread-count
/// independent).
pub fn stability_threshold(game: &NetworkDesignGame, state: &State, b: &SubsidyAssignment) -> f64 {
    let players: Vec<usize> = (0..game.num_players()).collect();
    let n = game.graph().node_count();
    ndg_exec::Executor::from_env()
        .par_map_with(
            &players,
            || (DijkstraWorkspace::new(n), Vec::<EdgeId>::new()),
            |(ws, path), &i| {
                let current = player_cost(game, state, b, i);
                let best = best_response_with(game, state, b, i, ws, path);
                if best <= EPS {
                    if current <= EPS {
                        1.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    (current / best).max(1.0)
                }
            },
        )
        .into_iter()
        .fold(1.0, f64::max)
}

/// Whether `state` is an α-approximate equilibrium.
pub fn is_alpha_equilibrium(
    game: &NetworkDesignGame,
    state: &State,
    b: &SubsidyAssignment,
    alpha: f64,
) -> bool {
    assert!(alpha >= 1.0, "α must be ≥ 1");
    stability_threshold(game, state, b) <= alpha * (1.0 + 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::NetworkDesignGame;
    use ndg_graph::{generators, harmonic, EdgeId, NodeId};

    #[test]
    fn exact_equilibrium_has_threshold_one() {
        let g = generators::star_graph(5, 1.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let tree: Vec<EdgeId> = game.graph().edge_ids().collect();
        let (state, _) = State::from_tree(&game, &tree).unwrap();
        let b = SubsidyAssignment::zero(game.graph());
        assert!((stability_threshold(&game, &state, &b) - 1.0).abs() < 1e-9);
        assert!(is_alpha_equilibrium(&game, &state, &b, 1.0));
    }

    #[test]
    fn cycle_threshold_is_h_n() {
        // Theorem 11 cycle: the far player pays H_n and can get 1, so
        // α* = H_n exactly.
        for n in [3usize, 5, 8] {
            let g = generators::cycle_graph(n + 1, 1.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let tree: Vec<EdgeId> = (0..n as u32).map(EdgeId).collect();
            let (state, _) = State::from_tree(&game, &tree).unwrap();
            let b = SubsidyAssignment::zero(game.graph());
            let alpha = stability_threshold(&game, &state, &b);
            let hn = harmonic(n as u64);
            assert!((alpha - hn).abs() < 1e-9, "n={n}: α*={alpha} vs H_n={hn}");
            assert!(is_alpha_equilibrium(&game, &state, &b, hn));
            assert!(!is_alpha_equilibrium(&game, &state, &b, hn - 0.01));
        }
    }

    #[test]
    fn subsidies_lower_the_threshold_monotonically() {
        let n = 6;
        let g = generators::cycle_graph(n + 1, 1.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let tree: Vec<EdgeId> = (0..n as u32).map(EdgeId).collect();
        let (state, _) = State::from_tree(&game, &tree).unwrap();
        let mut prev = f64::INFINITY;
        for k in 0..=n {
            // Fully subsidize the k farthest (least crowded) edges.
            let subsidized: Vec<EdgeId> = (0..k).map(|i| EdgeId((n - 1 - i) as u32)).collect();
            let b = SubsidyAssignment::all_or_nothing(game.graph(), &subsidized);
            let alpha = stability_threshold(&game, &state, &b);
            assert!(
                alpha <= prev + 1e-9,
                "threshold must fall as subsidies grow: {alpha} after {prev}"
            );
            prev = alpha;
        }
        assert!((prev - 1.0).abs() < 1e-9, "full path subsidy gives α* = 1");
    }

    #[test]
    #[should_panic]
    fn alpha_below_one_rejected() {
        let g = generators::star_graph(3, 1.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let tree: Vec<EdgeId> = game.graph().edge_ids().collect();
        let (state, _) = State::from_tree(&game, &tree).unwrap();
        let b = SubsidyAssignment::zero(game.graph());
        is_alpha_equilibrium(&game, &state, &b, 0.5);
    }
}
