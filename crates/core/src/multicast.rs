//! Multicast games (Section 6 / related work \[13\], \[20\]).
//!
//! A multicast game is the generalization the paper repeatedly contrasts
//! broadcast games with: a root `r` and a *subset* of terminal nodes, one
//! player per terminal, all connecting to `r`. Non-terminal nodes are pure
//! Steiner nodes — they pay nothing and route nobody of their own. The
//! general-game machinery (states, costs, exact Nash checks, potential,
//! dynamics) applies unchanged; this module adds the constructor, the
//! optimal-design baseline (exact Steiner tree on small instances) and a
//! multicast-specific social optimum helper, so the SND experiments can
//! compare broadcast against multicast behaviour.

use crate::game::{GameError, NetworkDesignGame, Player};
use ndg_graph::{EdgeId, Graph, NodeId, UnionFind};

/// Build a multicast game: one player per node of `terminals`, all with
/// terminal `root`. Terminals must be distinct, non-root nodes.
pub fn multicast(
    graph: Graph,
    root: NodeId,
    terminals: &[NodeId],
) -> Result<NetworkDesignGame, GameError> {
    let n = graph.node_count();
    if root.index() >= n {
        return Err(GameError::BadNode {
            node: root.0,
            node_count: n,
        });
    }
    let mut seen = vec![false; n];
    let mut players = Vec::with_capacity(terminals.len());
    for (i, &t) in terminals.iter().enumerate() {
        if t.index() >= n {
            return Err(GameError::BadNode {
                node: t.0,
                node_count: n,
            });
        }
        if t == root || seen[t.index()] {
            return Err(GameError::TrivialPlayer { player: i });
        }
        seen[t.index()] = true;
        players.push(Player {
            source: t,
            terminal: root,
        });
    }
    NetworkDesignGame::new(graph, players)
}

/// Exact minimum Steiner tree connecting `root ∪ terminals`, by
/// enumeration over edge subsets with union-find pruning (exponential —
/// small instances only; the social optimum of a multicast game).
///
/// Returns the edge set and its weight, or `None` if the terminals are not
/// connected to the root.
pub fn exact_steiner_tree(
    g: &Graph,
    root: NodeId,
    terminals: &[NodeId],
) -> Option<(Vec<EdgeId>, f64)> {
    let m = g.edge_count();
    assert!(m <= 24, "exact Steiner enumeration is capped at 24 edges");
    let mut required: Vec<NodeId> = terminals.to_vec();
    required.push(root);
    let mut best: Option<(Vec<EdgeId>, f64)> = None;
    for mask in 0u32..(1 << m) {
        let subset: Vec<EdgeId> = (0..m)
            .filter(|i| mask >> i & 1 == 1)
            .map(|i| EdgeId(i as u32))
            .collect();
        let w = g.weight_of(&subset);
        if let Some((_, bw)) = &best {
            if w >= *bw {
                continue;
            }
        }
        // All required nodes in one component of the subset?
        let mut uf = UnionFind::new(g.node_count());
        for &e in &subset {
            let (u, v) = g.endpoints(e);
            uf.union(u.index(), v.index());
        }
        let anchor = uf.find(root.index());
        if required.iter().all(|&t| uf.find(t.index()) == anchor) {
            best = Some((subset, w));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::{best_response, is_equilibrium};
    use crate::state::State;
    use crate::subsidy::SubsidyAssignment;
    use ndg_graph::generators;

    #[test]
    fn constructor_validates() {
        let g = generators::cycle_graph(5, 1.0);
        let game = multicast(g.clone(), NodeId(0), &[NodeId(2), NodeId(3)]).unwrap();
        assert_eq!(game.num_players(), 2);
        assert!(!game.is_broadcast());
        assert!(matches!(
            multicast(g.clone(), NodeId(0), &[NodeId(0)]),
            Err(GameError::TrivialPlayer { .. })
        ));
        assert!(matches!(
            multicast(g.clone(), NodeId(0), &[NodeId(2), NodeId(2)]),
            Err(GameError::TrivialPlayer { .. })
        ));
        assert!(matches!(
            multicast(g, NodeId(9), &[NodeId(2)]),
            Err(GameError::BadNode { .. })
        ));
    }

    #[test]
    fn steiner_tree_on_known_instance() {
        // Grid 2×3, root 0, terminals {2, 5}: optimum is the top row 0-1-2
        // plus edge 2-5 (weight 4 with unit weights)? Path 0-1-2 (2 edges)
        // + (2,5) = 3 edges total weight 3.
        let g = generators::grid_graph(2, 3, 1.0);
        let (tree, w) = exact_steiner_tree(&g, NodeId(0), &[NodeId(2), NodeId(5)]).unwrap();
        assert_eq!(w, 3.0);
        assert_eq!(tree.len(), 3);
    }

    #[test]
    fn steiner_disconnected_returns_none() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        assert!(exact_steiner_tree(&g, NodeId(0), &[NodeId(2)]).is_none());
    }

    #[test]
    fn multicast_equilibrium_machinery_works() {
        // Cycle of 6 with root 0, terminals {2, 4}: both players route
        // along the cycle; the tree state from the MST must be checkable
        // and the best responses meaningful.
        let g = generators::cycle_graph(6, 1.0);
        let game = multicast(g, NodeId(0), &[NodeId(2), NodeId(4)]).unwrap();
        let tree: Vec<EdgeId> = (0..5).map(EdgeId).collect();
        let (state, _) = State::from_tree(&game, &tree).unwrap();
        let b = SubsidyAssignment::zero(game.graph());
        // Player 1 (node 4) currently pays 1+1 going 4-3-2 then shares?
        // path_between(4, 0) in the path-tree = edges 3,2,1,0 — cost
        // 1 + 1 + 1/2 + 1/2 = 3; deviating to edge (5,0) side: 4-5-0
        // costs 2 ⇒ not an equilibrium.
        assert!(!is_equilibrium(&game, &state, &b));
        let (path, cost) = best_response(&game, &state, &b, 1);
        assert_eq!(path.len(), 2);
        assert!((cost - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sharing_between_multicast_players() {
        // Path 0-1-2-3 root 0, terminals {2, 3}: they share edges 0-1, 1-2.
        let g = generators::path_graph(4, 1.0);
        let game = multicast(g, NodeId(0), &[NodeId(2), NodeId(3)]).unwrap();
        let tree: Vec<EdgeId> = game.graph().edge_ids().collect();
        let (state, _) = State::from_tree(&game, &tree).unwrap();
        let b = SubsidyAssignment::zero(game.graph());
        let c0 = crate::cost::player_cost(&game, &state, &b, 0); // node 2
        let c1 = crate::cost::player_cost(&game, &state, &b, 1); // node 3
        assert!((c0 - 1.0).abs() < 1e-12); // 1/2 + 1/2
        assert!((c1 - 2.0).abs() < 1e-12); // 1/2 + 1/2 + 1
                                           // Steiner nodes pay nothing: total = established weight.
        assert!((c0 + c1 - state.weight(game.graph())).abs() < 1e-12);
        assert!(is_equilibrium(&game, &state, &b));
    }
}
