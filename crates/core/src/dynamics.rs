//! Best-response dynamics.
//!
//! Because the game admits Rosenthal's exact potential, best-response
//! dynamics strictly decreases `Φ` with every improving move and therefore
//! converges to a pure Nash equilibrium. This module drives those dynamics
//! under several move orders; E7/E9 use it to estimate equilibrium quality
//! reached from the social optimum (the Anshelevich et al. price-of-
//! stability argument) and to cross-check the enumerator's equilibria.

use crate::cost::player_cost;
use crate::equilibrium::best_response;
use crate::game::NetworkDesignGame;
use crate::incremental::IncrementalDynamics;
use crate::num::strictly_lt;
use crate::potential::rosenthal_potential;
use crate::state::State;
use crate::subsidy::SubsidyAssignment;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Consecutive `try_improve` declines within a round before the driver
/// attempts one batched Lemma 2 sweep for the round's remainder (see
/// [`IncrementalDynamics::batch_certified_equilibrium`]).
const BATCH_CERTIFY_AFTER_FRUITLESS: usize = 32;

/// Which player moves next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MoveOrder {
    /// Players move in index order, round after round.
    RoundRobin,
    /// A uniformly random player order is drawn for each round.
    RandomOrder(u64),
    /// In every step, the player with the largest cost improvement moves.
    MaxGain,
}

/// Outcome of a dynamics run.
#[derive(Clone, Debug)]
pub struct DynamicsResult {
    /// Final state.
    pub state: State,
    /// Number of improving moves performed, under every [`MoveOrder`].
    pub moves: usize,
    /// Number of rounds elapsed. A round gives every player one chance to
    /// move: one index-order (or shuffled) pass for
    /// [`MoveOrder::RoundRobin`]/[`MoveOrder::RandomOrder`], and up to `n`
    /// max-gain moves for [`MoveOrder::MaxGain`] (previously a MaxGain
    /// "round" was a single move, which made `rounds` — and the
    /// `max_rounds` budget — incomparable across orders). The final round
    /// that finds no improving move is counted.
    pub rounds: usize,
    /// Whether a Nash equilibrium was certified (no player can improve).
    pub converged: bool,
    /// Potential after every improving move (starting value first),
    /// maintained incrementally in O(Δ) per move.
    pub potential_trace: Vec<f64>,
}

/// Run best-response dynamics from `initial` until convergence or
/// `max_rounds` rounds (see [`DynamicsResult::rounds`] for what a round
/// is under each order).
///
/// The drive runs on [`IncrementalDynamics`]: Rosenthal's potential and
/// all player costs are maintained incrementally, best responses reuse a
/// Dijkstra workspace, and the optimistic-bound filter skips players that
/// provably cannot move — reproducing the naive driver's decisions (and
/// its potential trace, up to float tolerance) at a fraction of the work.
pub fn best_response_dynamics(
    game: &NetworkDesignGame,
    initial: State,
    b: &SubsidyAssignment,
    order: MoveOrder,
    max_rounds: usize,
) -> DynamicsResult {
    match best_response_dynamics_budgeted(
        game,
        initial,
        b,
        order,
        max_rounds,
        &ndg_exec::Budget::unlimited(),
    ) {
        Ok(res) => res,
        // Unreachable: an unlimited budget never expires.
        Err(ndg_exec::BudgetExceeded) => unreachable!("unlimited budget cannot expire"),
    }
}

/// [`best_response_dynamics`] under a cooperative [`ndg_exec::Budget`],
/// checked at every round boundary (one round = one full player pass, the
/// natural chunk of work). Expiry aborts the drive with
/// [`ndg_exec::BudgetExceeded`]; with an unlimited budget the move
/// sequence is identical to the unbudgeted driver.
pub fn best_response_dynamics_budgeted(
    game: &NetworkDesignGame,
    initial: State,
    b: &SubsidyAssignment,
    order: MoveOrder,
    max_rounds: usize,
    budget: &ndg_exec::Budget,
) -> Result<DynamicsResult, ndg_exec::BudgetExceeded> {
    let n = game.num_players();
    let mut engine = IncrementalDynamics::new(game, initial, b);
    let mut moves = 0usize;
    let mut rounds = 0usize;
    let mut trace = vec![engine.potential()];
    let mut rng = match order {
        MoveOrder::RandomOrder(seed) => Some(StdRng::seed_from_u64(seed)),
        _ => None,
    };
    let mut players: Vec<usize> = (0..n).collect();

    while rounds < max_rounds {
        budget.check()?;
        rounds += 1;
        let mut improved_this_round = false;
        match order {
            MoveOrder::RoundRobin | MoveOrder::RandomOrder(_) => {
                if let Some(rng) = rng.as_mut() {
                    // Shuffle the *identity* order, as the naive driver
                    // does — re-shuffling the previous round's permutation
                    // would draw the same randomness onto a different
                    // arrangement and diverge from the reference order.
                    for (k, slot) in players.iter_mut().enumerate() {
                        *slot = k;
                    }
                    players.shuffle(rng);
                }
                // Working rounds consult the maintained Lemma-2 view
                // first (see [`crate::recert`]): after every move only
                // the O(Δ) dirty margins are re-evaluated, so "is the
                // current state already an equilibrium?" is answered in
                // O(1) memoized per turn — and the moment it turns true
                // (the last move of the dynamics has settled), every
                // remaining turn declines without a probe. Margin- and
                // probe-certified answers coincide up to the
                // per-constraint-vs-per-best-response tolerance caveat
                // documented in [`crate::batch`].
                let mut fruitless = 0usize;
                let mut swept = false;
                for &i in &players {
                    match engine.maintained_equilibrium() {
                        // Nobody can improve: the rest of the round (and
                        // the dynamics) is decline-only.
                        Some(true) => break,
                        // Somebody can still improve; the maintained
                        // certification already *is* the sweep's answer,
                        // so no lazy sweep is worth running.
                        Some(false) => {}
                        // Untracked state (mid-dynamics cycle, multicast):
                        // lazy batched certification as before — once
                        // several consecutive players decline, the round
                        // is probably the certifying one, and if the live
                        // state is tree-induced one Lemma 2 sweep proves
                        // the *rest* of the round also finds nothing.
                        None => {
                            if !swept
                                && !improved_this_round
                                && fruitless >= BATCH_CERTIFY_AFTER_FRUITLESS
                            {
                                swept = true;
                                if engine.batch_certified_equilibrium() {
                                    break;
                                }
                            }
                        }
                    }
                    match engine.try_improve(i) {
                        Some(_) => {
                            moves += 1;
                            improved_this_round = true;
                            let phi = engine.potential();
                            debug_assert!(
                                phi < trace.last().unwrap() + 1e-9,
                                "potential must not increase"
                            );
                            trace.push(phi);
                        }
                        None => fruitless += 1,
                    }
                }
            }
            MoveOrder::MaxGain => {
                // A round = up to n max-gain moves, so `max_rounds` budgets
                // comparably with the pass-based orders.
                for _ in 0..n {
                    match engine.best_improving_move() {
                        Some(_) => {
                            moves += 1;
                            improved_this_round = true;
                            trace.push(engine.potential());
                        }
                        None => break,
                    }
                }
            }
        }
        if !improved_this_round {
            return Ok(DynamicsResult {
                state: engine.into_state(),
                moves,
                rounds,
                converged: true,
                potential_trace: trace,
            });
        }
    }
    // Round budget exhausted; check whether we happen to be at equilibrium.
    let converged = engine.is_certified_equilibrium();
    Ok(DynamicsResult {
        state: engine.into_state(),
        moves,
        rounds,
        converged,
        potential_trace: trace,
    })
}

/// The pre-incremental reference driver: recomputes the full `O(m)`
/// potential after every move and runs a fresh Dijkstra per player per
/// scan. Kept verbatim for cross-checking ([`best_response_dynamics`]
/// must reproduce its decisions) and as the baseline of the E10 bench.
/// MaxGain here performs one move per `max_rounds` unit, as the seed
/// driver did.
pub fn best_response_dynamics_naive(
    game: &NetworkDesignGame,
    initial: State,
    b: &SubsidyAssignment,
    order: MoveOrder,
    max_rounds: usize,
) -> DynamicsResult {
    let mut state = initial;
    let n = game.num_players();
    let mut moves = 0usize;
    let mut rounds = 0usize;
    let mut trace = vec![rosenthal_potential(game, &state, b)];
    let mut rng = match order {
        MoveOrder::RandomOrder(seed) => Some(StdRng::seed_from_u64(seed)),
        _ => None,
    };

    while rounds < max_rounds {
        rounds += 1;
        let mut improved_this_round = false;
        match order {
            MoveOrder::RoundRobin | MoveOrder::RandomOrder(_) => {
                let mut players: Vec<usize> = (0..n).collect();
                if let Some(rng) = rng.as_mut() {
                    players.shuffle(rng);
                }
                for i in players {
                    let current = player_cost(game, &state, b, i);
                    let (path, cost) = best_response(game, &state, b, i);
                    if strictly_lt(cost, current) {
                        state.replace_path(i, path);
                        moves += 1;
                        improved_this_round = true;
                        trace.push(rosenthal_potential(game, &state, b));
                    }
                }
            }
            MoveOrder::MaxGain => {
                let mut best: Option<(usize, Vec<ndg_graph::EdgeId>, f64)> = None;
                for i in 0..n {
                    let current = player_cost(game, &state, b, i);
                    let (path, cost) = best_response(game, &state, b, i);
                    if strictly_lt(cost, current) {
                        let gain = current - cost;
                        if best.as_ref().is_none_or(|(_, _, g)| gain > *g) {
                            best = Some((i, path, gain));
                        }
                    }
                }
                if let Some((i, path, _)) = best {
                    state.replace_path(i, path);
                    moves += 1;
                    improved_this_round = true;
                    trace.push(rosenthal_potential(game, &state, b));
                }
            }
        }
        if !improved_this_round {
            return DynamicsResult {
                state,
                moves,
                rounds,
                converged: true,
                potential_trace: trace,
            };
        }
    }
    let converged = crate::equilibrium::is_equilibrium(game, &state, b);
    DynamicsResult {
        state,
        moves,
        rounds,
        converged,
        potential_trace: trace,
    }
}

/// Convenience: run dynamics starting from the state induced by a spanning
/// tree (e.g. an MST, as in the price-of-stability argument).
pub fn dynamics_from_tree(
    game: &NetworkDesignGame,
    tree_edges: &[ndg_graph::EdgeId],
    b: &SubsidyAssignment,
    order: MoveOrder,
    max_rounds: usize,
) -> Result<DynamicsResult, crate::state::StateError> {
    let (state, _) = State::from_tree(game, tree_edges)?;
    Ok(best_response_dynamics(game, state, b, order, max_rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::is_equilibrium;
    use ndg_graph::{generators, kruskal, EdgeId, NodeId};

    #[test]
    fn converges_on_cycle_and_improves_far_player() {
        let n = 6;
        let g = generators::cycle_graph(n + 1, 1.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let tree: Vec<EdgeId> = (0..n as u32).map(EdgeId).collect();
        let b = SubsidyAssignment::zero(game.graph());
        let res = dynamics_from_tree(&game, &tree, &b, MoveOrder::RoundRobin, 100).unwrap();
        assert!(res.converged);
        assert!(res.moves >= 1);
        assert!(is_equilibrium(&game, &res.state, &b));
        // Potential strictly decreases along the trace.
        for w in res.potential_trace.windows(2) {
            assert!(w[1] < w[0] + 1e-9);
        }
    }

    #[test]
    fn all_orders_converge_randomized() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        for case in 0..12 {
            let n = rng.random_range(3..9usize);
            let g = generators::random_connected(n, 0.5, &mut rng, 0.2..3.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let tree = kruskal(game.graph()).unwrap();
            let b = SubsidyAssignment::zero(game.graph());
            for order in [
                MoveOrder::RoundRobin,
                MoveOrder::RandomOrder(case),
                MoveOrder::MaxGain,
            ] {
                let res = dynamics_from_tree(&game, &tree, &b, order, 10_000).unwrap();
                assert!(res.converged, "order {order:?} failed to converge");
                assert!(is_equilibrium(&game, &res.state, &b));
            }
        }
    }

    #[test]
    fn expired_budget_cancels_dynamics() {
        let n = 6;
        let g = generators::cycle_graph(n + 1, 1.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let tree: Vec<EdgeId> = (0..n as u32).map(EdgeId).collect();
        let b = SubsidyAssignment::zero(game.graph());
        let (state, _) = State::from_tree(&game, &tree).unwrap();
        let budget = ndg_exec::Budget::with_deadline(std::time::Duration::ZERO);
        let err =
            best_response_dynamics_budgeted(&game, state, &b, MoveOrder::RoundRobin, 100, &budget)
                .unwrap_err();
        assert_eq!(err, ndg_exec::BudgetExceeded);
    }

    #[test]
    fn unlimited_budget_matches_unbudgeted_driver() {
        let n = 6;
        let g = generators::cycle_graph(n + 1, 1.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let tree: Vec<EdgeId> = (0..n as u32).map(EdgeId).collect();
        let b = SubsidyAssignment::zero(game.graph());
        let plain = dynamics_from_tree(&game, &tree, &b, MoveOrder::RoundRobin, 100).unwrap();
        let (state, _) = State::from_tree(&game, &tree).unwrap();
        let budgeted = best_response_dynamics_budgeted(
            &game,
            state,
            &b,
            MoveOrder::RoundRobin,
            100,
            &ndg_exec::Budget::unlimited(),
        )
        .unwrap();
        assert_eq!(plain.moves, budgeted.moves);
        assert_eq!(plain.rounds, budgeted.rounds);
        assert_eq!(plain.potential_trace, budgeted.potential_trace);
    }

    #[test]
    fn equilibrium_start_needs_no_moves() {
        let g = generators::star_graph(5, 1.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let tree: Vec<EdgeId> = game.graph().edge_ids().collect();
        let b = SubsidyAssignment::zero(game.graph());
        let res = dynamics_from_tree(&game, &tree, &b, MoveOrder::RoundRobin, 10).unwrap();
        assert!(res.converged);
        assert_eq!(res.moves, 0);
        assert_eq!(res.rounds, 1);
    }

    #[test]
    fn subsidized_dynamics_respects_extension_costs() {
        // With the Theorem 11 cycle and the closing edge made free to the
        // deviator, subsidizing the whole tree keeps everyone in place.
        let n = 5;
        let g = generators::cycle_graph(n + 1, 1.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let tree: Vec<EdgeId> = (0..n as u32).map(EdgeId).collect();
        let b = SubsidyAssignment::all_or_nothing(game.graph(), &tree);
        let res = dynamics_from_tree(&game, &tree, &b, MoveOrder::RoundRobin, 10).unwrap();
        assert!(res.converged);
        assert_eq!(res.moves, 0);
    }
}
