//! Exhaustive enumeration for small games: all spanning trees, all
//! equilibrium trees, exact price of stability / anarchy.
//!
//! In a broadcast game every equilibrium of interest is a spanning tree
//! (an equilibrium containing a cycle only arises from zero-weight cycles,
//! and then an equally-weighted equilibrium tree exists — Section 2), so
//! exact PoS on small instances reduces to scanning spanning trees.
//!
//! The enumerator is a *streaming visitor* over a rollback union-find:
//! each tree is handed to the caller as it is produced (O(n) live state,
//! no per-branch clones), and the equilibrium drivers test trees in
//! bounded parallel chunks instead of materializing `Vec<Vec<EdgeId>>`
//! first — peak memory no longer scales with the number of spanning
//! trees. Kirchhoff's matrix-tree determinant predicts the count so the
//! cap can reject hopeless instances before enumerating a single tree.

use crate::broadcast::is_tree_equilibrium;
use crate::game::NetworkDesignGame;
use crate::subsidy::SubsidyAssignment;
use ndg_graph::{EdgeId, Graph, NodeId, RollbackUnionFind, RootedTree};
use std::fmt;
use std::ops::ControlFlow;

/// Profiling counters (no-ops until `ndg_obs::install`): trees the
/// rollback-UF stream enumerated, orbit representatives handed to the
/// visitor, and trees *covered* (sum of visited orbit sizes) — the
/// covered/visited ratio is the orbit-pruning win, observable live.
static ENUM_TREES_VISITED: ndg_obs::Counter = ndg_obs::Counter::new("enum_trees_visited_total");
static ENUM_ORBIT_REPS: ndg_obs::Counter = ndg_obs::Counter::new("enum_orbit_reps_total");
static ENUM_ORBIT_COVERED: ndg_obs::Counter = ndg_obs::Counter::new("enum_orbit_covered_total");

/// Errors from the enumeration pipeline.
#[derive(Clone, Debug, PartialEq)]
pub enum EnumError {
    /// More spanning trees than the cap. Reports how far the sweep got so
    /// callers never mistake a truncation for exhaustion.
    CapExceeded {
        /// The caller's tree cap.
        cap: usize,
        /// Trees actually covered before stopping (orbit-weighted for the
        /// pruned sweep); `0` when the Kirchhoff precheck rejected the
        /// instance without enumerating at all.
        visited: u64,
        /// Kirchhoff matrix-tree estimate of the total spanning-tree count.
        estimate: f64,
    },
    /// The graph has no spanning tree.
    Disconnected,
    /// The caller's [`ndg_exec::Budget`] expired mid-enumeration.
    Cancelled,
}

impl fmt::Display for EnumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnumError::CapExceeded {
                cap,
                visited,
                estimate,
            } => write!(
                f,
                "more than {cap} spanning trees (covered {visited} before stopping; \
                 Kirchhoff estimate ≈ {estimate:.0})"
            ),
            EnumError::Disconnected => write!(f, "graph is disconnected"),
            EnumError::Cancelled => write!(f, "enumeration cancelled by budget"),
        }
    }
}

impl std::error::Error for EnumError {}

/// Number of spanning trees by Kirchhoff's matrix-tree theorem
/// (determinant of a Laplacian minor; exact up to `f64` rounding).
pub fn count_spanning_trees(g: &Graph) -> f64 {
    let n = g.node_count();
    if n <= 1 {
        return 1.0;
    }
    // Laplacian over multigraph edge counts.
    let mut lap = vec![vec![0.0f64; n]; n];
    for (_, e) in g.edges() {
        let (u, v) = (e.u.index(), e.v.index());
        lap[u][u] += 1.0;
        lap[v][v] += 1.0;
        lap[u][v] -= 1.0;
        lap[v][u] -= 1.0;
    }
    // Delete last row/column, then Gaussian elimination with partial pivot.
    let m = n - 1;
    let mut a: Vec<Vec<f64>> = (0..m).map(|i| lap[i][..m].to_vec()).collect();
    let mut det = 1.0f64;
    for col in 0..m {
        let pivot_row = (col..m)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("nonempty range");
        if a[pivot_row][col].abs() < 1e-12 {
            return 0.0;
        }
        if pivot_row != col {
            a.swap(pivot_row, col);
            det = -det;
        }
        det *= a[col][col];
        let inv = 1.0 / a[col][col];
        for row in (col + 1)..m {
            let factor = a[row][col] * inv;
            if factor == 0.0 {
                continue;
            }
            let (upper, lower) = a.split_at_mut(row);
            let pivot_row = &upper[col][col..];
            for (val, &p) in lower[0][col..].iter_mut().zip(pivot_row) {
                *val -= factor * p;
            }
        }
    }
    det.round().max(0.0)
}

/// Visit every spanning tree of `g` exactly once, in include/exclude
/// lexicographic edge order, without materializing any of them: `visit`
/// receives each tree as a borrowed edge slice valid for that call only.
/// Return [`ControlFlow::Break`] from the visitor to stop early.
///
/// Live state is O(n + m) — one rollback union-find and the current
/// prefix — regardless of how many trees the graph has.
pub fn for_each_spanning_tree<F>(g: &Graph, mut visit: F) -> Result<(), EnumError>
where
    F: FnMut(&[EdgeId]) -> ControlFlow<()>,
{
    let n = g.node_count();
    if !g.is_connected() {
        return Err(EnumError::Disconnected);
    }
    if n <= 1 {
        let _ = visit(&[]);
        return Ok(());
    }
    let m = g.edge_count();
    let mut chosen: Vec<EdgeId> = Vec::with_capacity(n - 1);
    let mut uf = RollbackUnionFind::new(n);
    let _ = rec(g, 0, &mut uf, &mut chosen, &mut visit, n, m);
    return Ok(());

    fn rec<F>(
        g: &Graph,
        idx: usize,
        uf: &mut RollbackUnionFind,
        chosen: &mut Vec<EdgeId>,
        visit: &mut F,
        n: usize,
        m: usize,
    ) -> ControlFlow<()>
    where
        F: FnMut(&[EdgeId]) -> ControlFlow<()>,
    {
        if chosen.len() == n - 1 {
            return visit(chosen);
        }
        if idx == m || chosen.len() + (m - idx) < n - 1 {
            return ControlFlow::Continue(());
        }
        let e = EdgeId(idx as u32);
        let (u, v) = g.endpoints(e);
        // Branch 1: include e (unless it closes a cycle).
        let mark = uf.mark();
        if uf.union(u.index(), v.index()) {
            chosen.push(e);
            let flow = rec(g, idx + 1, uf, chosen, visit, n, m);
            chosen.pop();
            uf.rollback_to(mark);
            flow?;
        }
        // Branch 2: exclude e — only if the rest can still connect
        // (probed on the same union-find, then rolled back).
        let mark = uf.mark();
        let mut components = uf.set_count();
        for later in (idx + 1)..m {
            let (a, b) = g.endpoints(EdgeId(later as u32));
            if uf.union(a.index(), b.index()) {
                components -= 1;
                if components == 1 {
                    break;
                }
            }
        }
        uf.rollback_to(mark);
        if components == 1 {
            return rec(g, idx + 1, uf, chosen, visit, n, m);
        }
        ControlFlow::Continue(())
    }
}

/// Kirchhoff precheck: reject instances whose determinant proves the tree
/// count exceeds `cap`. Conservative: a generous margin absorbs the
/// determinant's float rounding, so `Ok` never means "within cap" — it
/// means "enumerate and count exactly". The returned error carries
/// `visited: 0` (nothing was enumerated) and the determinant estimate.
fn cap_precheck(g: &Graph, cap: usize) -> Result<(), EnumError> {
    if !g.is_connected() {
        return Ok(());
    }
    let det = count_spanning_trees(g);
    if !det.is_nan() && det > cap as f64 * 1.1 + 16.0 {
        return Err(EnumError::CapExceeded {
            cap,
            visited: 0,
            estimate: det,
        });
    }
    Ok(())
}

/// [`EnumError::CapExceeded`] for a sweep that stopped after covering
/// `visited` trees mid-enumeration (the Kirchhoff estimate is recomputed;
/// this is an error path, never hot).
fn cap_tripped(g: &Graph, cap: usize, visited: u64) -> EnumError {
    EnumError::CapExceeded {
        cap,
        visited,
        estimate: count_spanning_trees(g),
    }
}

/// Enumerate all spanning trees (as sorted edge-id vectors), up to `cap`.
///
/// Prefer [`for_each_spanning_tree`] where the trees can be consumed as a
/// stream: this wrapper materializes O(#trees · n) memory by definition.
pub fn spanning_trees(g: &Graph, cap: usize) -> Result<Vec<Vec<EdgeId>>, EnumError> {
    cap_precheck(g, cap)?;
    let mut out: Vec<Vec<EdgeId>> = Vec::new();
    let mut capped = false;
    for_each_spanning_tree(g, |tree| {
        if out.len() >= cap {
            capped = true;
            return ControlFlow::Break(());
        }
        out.push(tree.to_vec());
        ControlFlow::Continue(())
    })?;
    if capped {
        return Err(cap_tripped(g, cap, out.len() as u64));
    }
    Ok(out)
}

/// An equilibrium spanning tree with its weight.
#[derive(Clone, Debug)]
pub struct EquilibriumTree {
    /// Sorted edge ids of the tree.
    pub edges: Vec<EdgeId>,
    /// `wgt(T)`.
    pub weight: f64,
}

/// Trees per streaming batch: bounds peak memory at O(`CHUNK` · n) while
/// giving the parallel equilibrium scan enough work per dispatch.
const CHUNK: usize = 1024;

/// Stream every spanning tree through the Lemma 2 equilibrium check in
/// parallel chunks, folding each equilibrium into `acc` as it is found.
/// Peak memory is O(`CHUNK` · n + |acc|), never O(#trees · n).
pub fn fold_equilibrium_trees<T, F>(
    game: &NetworkDesignGame,
    b: &SubsidyAssignment,
    cap: usize,
    acc: T,
    fold: F,
) -> Result<T, EnumError>
where
    F: FnMut(T, EquilibriumTree) -> T,
    T: Send,
{
    fold_equilibrium_trees_budgeted(game, b, cap, acc, fold, &ndg_exec::Budget::unlimited())
}

/// [`fold_equilibrium_trees`] under a cooperative [`ndg_exec::Budget`]:
/// the budget is checked once per streamed chunk (every 1024 trees —
/// the same boundary at which the parallel Lemma 2 scan dispatches) and
/// once before the final partial chunk. Expiry aborts the enumeration
/// with [`EnumError::Cancelled`]; an unlimited budget changes nothing.
pub fn fold_equilibrium_trees_budgeted<T, F>(
    game: &NetworkDesignGame,
    b: &SubsidyAssignment,
    cap: usize,
    mut acc: T,
    mut fold: F,
    budget: &ndg_exec::Budget,
) -> Result<T, EnumError>
where
    F: FnMut(T, EquilibriumTree) -> T,
    T: Send,
{
    let g = game.graph();
    cap_precheck(g, cap)?;
    if budget.expired() {
        return Err(EnumError::Cancelled);
    }
    let root = game.root().unwrap_or(NodeId(0));
    let mut chunk: Vec<Vec<EdgeId>> = Vec::with_capacity(CHUNK);
    let mut total = 0usize;
    let mut capped = false;
    let mut cancelled = false;
    let mut acc_slot = Some(acc);
    for_each_spanning_tree(g, |tree| {
        if total >= cap {
            capped = true;
            return ControlFlow::Break(());
        }
        total += 1;
        chunk.push(tree.to_vec());
        if chunk.len() == CHUNK {
            if budget.expired() {
                cancelled = true;
                return ControlFlow::Break(());
            }
            let mut a = acc_slot.take().expect("accumulator is always restored");
            for eq in scan_chunk(game, b, root, &chunk) {
                a = fold(a, eq);
            }
            acc_slot = Some(a);
            chunk.clear();
        }
        ControlFlow::Continue(())
    })?;
    if cancelled {
        return Err(EnumError::Cancelled);
    }
    if capped {
        return Err(cap_tripped(g, cap, total as u64));
    }
    if budget.expired() {
        return Err(EnumError::Cancelled);
    }
    acc = acc_slot.take().expect("accumulator is always restored");
    for eq in scan_chunk(game, b, root, &chunk) {
        acc = fold(acc, eq);
    }
    Ok(acc)
}

/// Lemma-2-check one chunk of trees on the shared executor, preserving the
/// chunk's order: slot `i` is `Some` iff tree `i` is an equilibrium.
fn scan_chunk_verdicts(
    game: &NetworkDesignGame,
    b: &SubsidyAssignment,
    root: NodeId,
    chunk: &[Vec<EdgeId>],
) -> Vec<Option<EquilibriumTree>> {
    let g = game.graph();
    let check = |edges: &Vec<EdgeId>| -> Option<EquilibriumTree> {
        let rt = RootedTree::new(g, edges, root).ok()?;
        if is_tree_equilibrium(game, &rt, b) {
            Some(EquilibriumTree {
                edges: edges.clone(),
                weight: g.weight_of(edges),
            })
        } else {
            None
        }
    };
    // Small chunks (the final partial one, or tiny instances) stay on the
    // caller's stack; full chunks fan out in enumeration order.
    let ex = if chunk.len() < 128 {
        ndg_exec::Executor::sequential()
    } else {
        ndg_exec::Executor::from_env()
    };
    ex.par_map(chunk, check)
}

/// Lemma-2-check one chunk of trees on the shared executor, preserving the
/// chunk's enumeration order in the result.
fn scan_chunk(
    game: &NetworkDesignGame,
    b: &SubsidyAssignment,
    root: NodeId,
    chunk: &[Vec<EdgeId>],
) -> Vec<EquilibriumTree> {
    scan_chunk_verdicts(game, b, root, chunk)
        .into_iter()
        .flatten()
        .collect()
}

/// All spanning trees of the broadcast game's graph that are equilibria of
/// the extension with `b` (Lemma 2 check per tree, parallel over streamed
/// chunks), sorted by weight then edge ids.
pub fn equilibrium_trees(
    game: &NetworkDesignGame,
    b: &SubsidyAssignment,
    cap: usize,
) -> Result<Vec<EquilibriumTree>, EnumError> {
    let mut found = fold_equilibrium_trees(game, b, cap, Vec::new(), |mut acc, eq| {
        acc.push(eq);
        acc
    })?;
    found.sort_by(|a, b| {
        a.weight
            .total_cmp(&b.weight)
            .then_with(|| a.edges.cmp(&b.edges))
    });
    Ok(found)
}

/// `(a.weight, a.edges) < (b.weight, b.edges)` — the enumeration's
/// canonical tree order.
fn tree_lt(a: &EquilibriumTree, b: &EquilibriumTree) -> bool {
    a.weight
        .total_cmp(&b.weight)
        .then_with(|| a.edges.cmp(&b.edges))
        .is_lt()
}

/// The minimum-weight equilibrium tree, if any. Streams: O(n) live state
/// per worker instead of collecting every equilibrium first.
pub fn best_equilibrium_tree(
    game: &NetworkDesignGame,
    b: &SubsidyAssignment,
    cap: usize,
) -> Result<Option<EquilibriumTree>, EnumError> {
    fold_equilibrium_trees(
        game,
        b,
        cap,
        None,
        |best: Option<EquilibriumTree>, eq| match best {
            Some(cur) if tree_lt(&cur, &eq) => Some(cur),
            _ => Some(eq),
        },
    )
}

/// Exact price of stability of a broadcast game over spanning-tree states:
/// `min_{equilibrium T} wgt(T) / wgt(MST)`. `Ok(None)` if no equilibrium
/// tree exists (possible in principle only under subsidy-modified games;
/// the unsubsidized game always has one by potential descent).
pub fn price_of_stability(
    game: &NetworkDesignGame,
    b: &SubsidyAssignment,
    cap: usize,
) -> Result<Option<f64>, EnumError> {
    price_of_stability_budgeted(game, b, cap, &ndg_exec::Budget::unlimited())
}

/// [`price_of_stability`] under a cooperative [`ndg_exec::Budget`] (checked
/// at enumeration chunk boundaries; expiry is [`EnumError::Cancelled`]).
pub fn price_of_stability_budgeted(
    game: &NetworkDesignGame,
    b: &SubsidyAssignment,
    cap: usize,
    budget: &ndg_exec::Budget,
) -> Result<Option<f64>, EnumError> {
    let opt = ndg_graph::mst_weight(game.graph()).map_err(|_| EnumError::Disconnected)?;
    let best = fold_equilibrium_trees_budgeted(
        game,
        b,
        cap,
        None,
        |best: Option<EquilibriumTree>, eq| match best {
            Some(cur) if tree_lt(&cur, &eq) => Some(cur),
            _ => Some(eq),
        },
        budget,
    )?;
    Ok(best.map(|t| t.weight / opt))
}

/// Exact price of anarchy over spanning-tree states:
/// `max_{equilibrium T} wgt(T) / wgt(MST)`. Streams like
/// [`best_equilibrium_tree`].
pub fn price_of_anarchy_trees(
    game: &NetworkDesignGame,
    b: &SubsidyAssignment,
    cap: usize,
) -> Result<Option<f64>, EnumError> {
    let opt = ndg_graph::mst_weight(game.graph()).map_err(|_| EnumError::Disconnected)?;
    let worst = fold_equilibrium_trees(
        game,
        b,
        cap,
        None,
        |worst: Option<EquilibriumTree>, eq| match worst {
            Some(cur) if tree_lt(&eq, &cur) => Some(cur),
            _ => Some(eq),
        },
    )?;
    Ok(worst.map(|t| t.weight / opt))
}

/// Elements kept in an [`EdgeGroup`] closure before falling back to the
/// trivial group. Per-tree pruning work is O(|G| · n log n), so a runaway
/// closure would cost more than the Lemma-2 scans it saves.
const GROUP_CAP: usize = 1024;

/// A permutation group acting on edge ids, materialized as its full element
/// set (identity first). Built from automorphism generators — e.g.
/// `ndg_canon::AutGenerators::edge` — and consumed by the orbit-pruned
/// enumeration to skip automorphic copies of spanning trees.
///
/// Budget discipline mirrors `ndg-canon`'s literal fallback: malformed
/// generators or a closure larger than `GROUP_CAP` yield the **trivial
/// group**, under which pruning degrades to the exact unpruned sweep.
/// Any subgroup of the true automorphism group is sound here: orbits of a
/// subgroup partition the trees just the same, merely coarser pruning.
#[derive(Clone, Debug)]
pub struct EdgeGroup {
    /// Edges the permutations act on.
    num_edges: usize,
    /// Every group element; `elems[0]` is the identity.
    elems: Vec<Vec<u32>>,
}

impl EdgeGroup {
    /// The trivial group on `num_edges` edges (no pruning).
    pub fn trivial(num_edges: usize) -> Self {
        EdgeGroup {
            num_edges,
            elems: vec![(0..num_edges as u32).collect()],
        }
    }

    /// Close `gens` under composition into the full element set. Returns
    /// the trivial group when `gens` is empty, any generator is not a
    /// permutation of `0..num_edges`, or the closure exceeds `GROUP_CAP`.
    pub fn from_generators(num_edges: usize, gens: &[Vec<u32>]) -> Self {
        let valid: Vec<&Vec<u32>> = gens
            .iter()
            .filter(|p| p.len() == num_edges && is_permutation(p))
            .collect();
        if valid.len() != gens.len() || valid.is_empty() {
            return EdgeGroup::trivial(num_edges);
        }
        let identity: Vec<u32> = (0..num_edges as u32).collect();
        let mut seen: std::collections::HashSet<Vec<u32>> = std::collections::HashSet::new();
        seen.insert(identity.clone());
        let mut elems = vec![identity];
        let mut frontier = 0usize;
        while frontier < elems.len() {
            let cur = elems[frontier].clone();
            frontier += 1;
            for gen in &valid {
                // (gen ∘ cur): apply cur first, then gen.
                let next: Vec<u32> = cur.iter().map(|&e| gen[e as usize]).collect();
                if seen.insert(next.clone()) {
                    if elems.len() >= GROUP_CAP {
                        return EdgeGroup::trivial(num_edges);
                    }
                    elems.push(next);
                }
            }
        }
        EdgeGroup { num_edges, elems }
    }

    /// Number of edges the group acts on.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Group order (≥ 1).
    pub fn order(&self) -> usize {
        self.elems.len()
    }

    /// Whether this is the trivial group (pruning disabled).
    pub fn is_trivial(&self) -> bool {
        self.elems.len() == 1
    }

    /// Every element, identity first.
    pub fn elements(&self) -> impl Iterator<Item = &[u32]> {
        self.elems.iter().map(|p| p.as_slice())
    }

    /// If the sorted edge set `tree` is the lexicographic minimum of its
    /// orbit under this group, return the orbit size (`|G| / |Stab(T)|`,
    /// exact by Lagrange); otherwise `None`. `scratch` avoids a per-call
    /// allocation.
    pub fn orbit_rank(&self, tree: &[EdgeId], scratch: &mut Vec<EdgeId>) -> Option<u64> {
        let mut stabilizer = 1u64; // the identity
        for sigma in &self.elems[1..] {
            scratch.clear();
            scratch.extend(tree.iter().map(|e| EdgeId(sigma[e.index()])));
            scratch.sort_unstable();
            match scratch.as_slice().cmp(tree) {
                std::cmp::Ordering::Less => return None,
                std::cmp::Ordering::Equal => stabilizer += 1,
                std::cmp::Ordering::Greater => {}
            }
        }
        Some(self.elems.len() as u64 / stabilizer)
    }
}

fn is_permutation(p: &[u32]) -> bool {
    let mut hit = vec![false; p.len()];
    p.iter()
        .all(|&x| (x as usize) < hit.len() && !std::mem::replace(&mut hit[x as usize], true))
}

/// Visit exactly one representative — the lexicographically minimal sorted
/// edge set — of every spanning-tree orbit under `group`, passing the orbit
/// size alongside. With the trivial group this is exactly
/// [`for_each_spanning_tree`] with orbit size 1; a group whose edge count
/// does not match `g` is treated as trivial (sound, never wrong).
///
/// All trees are still *enumerated* (the rollback-UF stream is unchanged);
/// what the orbit layer saves is every downstream per-tree cost — the
/// Lemma-2 equilibrium scan dominates, and that now runs once per orbit.
pub fn for_each_spanning_tree_orbits<F>(
    g: &Graph,
    group: &EdgeGroup,
    mut visit: F,
) -> Result<(), EnumError>
where
    F: FnMut(&[EdgeId], u64) -> ControlFlow<()>,
{
    if group.is_trivial() || group.num_edges() != g.edge_count() {
        let mut n: u64 = 0;
        let out = for_each_spanning_tree(g, |t| {
            n += 1;
            visit(t, 1)
        });
        ENUM_TREES_VISITED.add(n);
        ENUM_ORBIT_REPS.add(n);
        ENUM_ORBIT_COVERED.add(n);
        if ndg_obs::events::recording() {
            ndg_obs::events::emit(
                "enum",
                vec![
                    ("covered", n.to_string()),
                    ("reps", n.to_string()),
                    ("trees", n.to_string()),
                ],
            );
        }
        return out;
    }
    let mut scratch: Vec<EdgeId> = Vec::with_capacity(g.node_count());
    let (mut enumerated, mut reps, mut covered) = (0u64, 0u64, 0u64);
    let out = for_each_spanning_tree(g, |tree| {
        enumerated += 1;
        match group.orbit_rank(tree, &mut scratch) {
            Some(size) => {
                reps += 1;
                covered += size;
                visit(tree, size)
            }
            None => ControlFlow::Continue(()),
        }
    });
    ENUM_TREES_VISITED.add(enumerated);
    ENUM_ORBIT_REPS.add(reps);
    ENUM_ORBIT_COVERED.add(covered);
    if ndg_obs::events::recording() {
        ndg_obs::events::emit(
            "enum",
            vec![
                ("covered", covered.to_string()),
                ("reps", reps.to_string()),
                ("trees", enumerated.to_string()),
            ],
        );
    }
    out
}

/// Orbit-pruned [`fold_equilibrium_trees`]: `fold` runs once per
/// equilibrium **orbit representative**, receiving the orbit size so
/// aggregates can be weighted back to the full sweep. The cap counts
/// *covered* trees (sum of visited orbit sizes), so it trips exactly when
/// the unpruned sweep would.
pub fn fold_equilibrium_trees_orbits<T, F>(
    game: &NetworkDesignGame,
    b: &SubsidyAssignment,
    cap: usize,
    group: &EdgeGroup,
    acc: T,
    fold: F,
) -> Result<T, EnumError>
where
    F: FnMut(T, EquilibriumTree, u64) -> T,
    T: Send,
{
    fold_equilibrium_trees_orbits_budgeted(
        game,
        b,
        cap,
        group,
        acc,
        fold,
        &ndg_exec::Budget::unlimited(),
    )
}

/// [`fold_equilibrium_trees_orbits`] under a cooperative
/// [`ndg_exec::Budget`], checked at the same chunk boundaries as the
/// unpruned fold.
pub fn fold_equilibrium_trees_orbits_budgeted<T, F>(
    game: &NetworkDesignGame,
    b: &SubsidyAssignment,
    cap: usize,
    group: &EdgeGroup,
    mut acc: T,
    mut fold: F,
    budget: &ndg_exec::Budget,
) -> Result<T, EnumError>
where
    F: FnMut(T, EquilibriumTree, u64) -> T,
    T: Send,
{
    let g = game.graph();
    cap_precheck(g, cap)?;
    if budget.expired() {
        return Err(EnumError::Cancelled);
    }
    let root = game.root().unwrap_or(NodeId(0));
    let mut chunk: Vec<Vec<EdgeId>> = Vec::with_capacity(CHUNK);
    let mut sizes: Vec<u64> = Vec::with_capacity(CHUNK);
    let mut covered = 0u64;
    let mut capped = false;
    let mut cancelled = false;
    let mut acc_slot = Some(acc);
    let drain = |chunk: &mut Vec<Vec<EdgeId>>,
                 sizes: &mut Vec<u64>,
                 acc_slot: &mut Option<T>,
                 fold: &mut F| {
        let mut a = acc_slot.take().expect("accumulator is always restored");
        for (verdict, &size) in scan_chunk_verdicts(game, b, root, chunk)
            .into_iter()
            .zip(sizes.iter())
        {
            if let Some(eq) = verdict {
                a = fold(a, eq, size);
            }
        }
        *acc_slot = Some(a);
        chunk.clear();
        sizes.clear();
    };
    for_each_spanning_tree_orbits(g, group, |tree, size| {
        if covered >= cap as u64 {
            capped = true;
            return ControlFlow::Break(());
        }
        covered += size;
        chunk.push(tree.to_vec());
        sizes.push(size);
        if chunk.len() == CHUNK {
            if budget.expired() {
                cancelled = true;
                return ControlFlow::Break(());
            }
            drain(&mut chunk, &mut sizes, &mut acc_slot, &mut fold);
        }
        ControlFlow::Continue(())
    })?;
    if cancelled {
        return Err(EnumError::Cancelled);
    }
    if capped || covered > cap as u64 {
        return Err(cap_tripped(g, cap, covered));
    }
    if budget.expired() {
        return Err(EnumError::Cancelled);
    }
    drain(&mut chunk, &mut sizes, &mut acc_slot, &mut fold);
    acc = acc_slot.take().expect("accumulator is always restored");
    Ok(acc)
}

/// The orbit member minimizing `(weight, edges)` — the same total order the
/// unpruned sweep minimizes over. Evaluates `weight_of` on **every distinct
/// member** rather than assuming the representative's weight: edge weights
/// are summed in sorted-edge-id order, so automorphic trees can differ in
/// the last ulp, and bit-identity with the unpruned sweep demands comparing
/// the actual members.
pub fn orbit_min_member(g: &Graph, group: &EdgeGroup, rep: &EquilibriumTree) -> EquilibriumTree {
    orbit_extreme_member(g, group, rep, true)
}

/// The orbit member maximizing `(weight, edges)`; see [`orbit_min_member`].
pub fn orbit_max_member(g: &Graph, group: &EdgeGroup, rep: &EquilibriumTree) -> EquilibriumTree {
    orbit_extreme_member(g, group, rep, false)
}

fn orbit_extreme_member(
    g: &Graph,
    group: &EdgeGroup,
    rep: &EquilibriumTree,
    want_min: bool,
) -> EquilibriumTree {
    let mut seen: std::collections::HashSet<Vec<EdgeId>> = std::collections::HashSet::new();
    let mut best: Option<EquilibriumTree> = None;
    for sigma in group.elements() {
        let mut edges: Vec<EdgeId> = rep.edges.iter().map(|e| EdgeId(sigma[e.index()])).collect();
        edges.sort_unstable();
        if !seen.insert(edges.clone()) {
            continue;
        }
        let cand = EquilibriumTree {
            weight: g.weight_of(&edges),
            edges,
        };
        best = match best {
            Some(cur) => {
                let keep_cur = if want_min {
                    !tree_lt(&cand, &cur)
                } else {
                    !tree_lt(&cur, &cand)
                };
                Some(if keep_cur { cur } else { cand })
            }
            None => Some(cand),
        };
    }
    best.expect("orbit contains at least the representative")
}

/// Orbit-pruned [`best_equilibrium_tree`]: bit-identical result (weight and
/// edge set) via one Lemma-2 check per orbit plus an orbit-member weight
/// scan per *equilibrium* orbit.
pub fn best_equilibrium_tree_orbits(
    game: &NetworkDesignGame,
    b: &SubsidyAssignment,
    cap: usize,
    group: &EdgeGroup,
) -> Result<Option<EquilibriumTree>, EnumError> {
    let g = game.graph();
    fold_equilibrium_trees_orbits(
        game,
        b,
        cap,
        group,
        None,
        |best: Option<EquilibriumTree>, eq, _size| {
            let cand = orbit_min_member(g, group, &eq);
            match best {
                Some(cur) if tree_lt(&cur, &cand) => Some(cur),
                _ => Some(cand),
            }
        },
    )
}

/// Orbit-pruned [`price_of_stability`]: bit-identical to the unpruned
/// driver (same `wgt(T*) / wgt(MST)` division on the same bits).
pub fn price_of_stability_orbits(
    game: &NetworkDesignGame,
    b: &SubsidyAssignment,
    cap: usize,
    group: &EdgeGroup,
) -> Result<Option<f64>, EnumError> {
    price_of_stability_orbits_budgeted(game, b, cap, group, &ndg_exec::Budget::unlimited())
}

/// [`price_of_stability_orbits`] under a cooperative [`ndg_exec::Budget`].
pub fn price_of_stability_orbits_budgeted(
    game: &NetworkDesignGame,
    b: &SubsidyAssignment,
    cap: usize,
    group: &EdgeGroup,
    budget: &ndg_exec::Budget,
) -> Result<Option<f64>, EnumError> {
    let g = game.graph();
    let opt = ndg_graph::mst_weight(g).map_err(|_| EnumError::Disconnected)?;
    let best = fold_equilibrium_trees_orbits_budgeted(
        game,
        b,
        cap,
        group,
        None,
        |best: Option<EquilibriumTree>, eq, _size| {
            let cand = orbit_min_member(g, group, &eq);
            match best {
                Some(cur) if tree_lt(&cur, &cand) => Some(cur),
                _ => Some(cand),
            }
        },
        budget,
    )?;
    Ok(best.map(|t| t.weight / opt))
}

/// Orbit-pruned [`price_of_anarchy_trees`]: bit-identical to the unpruned
/// driver via the orbit-**max** member per equilibrium orbit.
pub fn price_of_anarchy_trees_orbits(
    game: &NetworkDesignGame,
    b: &SubsidyAssignment,
    cap: usize,
    group: &EdgeGroup,
) -> Result<Option<f64>, EnumError> {
    let g = game.graph();
    let opt = ndg_graph::mst_weight(g).map_err(|_| EnumError::Disconnected)?;
    let worst = fold_equilibrium_trees_orbits(
        game,
        b,
        cap,
        group,
        None,
        |worst: Option<EquilibriumTree>, eq, _size| {
            let cand = orbit_max_member(g, group, &eq);
            match worst {
                Some(cur) if tree_lt(&cand, &cur) => Some(cur),
                _ => Some(cand),
            }
        },
    )?;
    Ok(worst.map(|t| t.weight / opt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndg_graph::generators;

    #[test]
    fn counts_match_known_formulas() {
        // Cycle C_n has n spanning trees.
        for n in 3..8usize {
            let g = generators::cycle_graph(n, 1.0);
            assert_eq!(count_spanning_trees(&g) as usize, n);
            assert_eq!(spanning_trees(&g, 100).unwrap().len(), n);
        }
        // K_n has n^(n−2) spanning trees (Cayley).
        for n in 3..6usize {
            let g = generators::complete_graph(n, 1.0);
            let want = (n as f64).powi(n as i32 - 2) as usize;
            assert_eq!(count_spanning_trees(&g) as usize, want);
            assert_eq!(spanning_trees(&g, 1000).unwrap().len(), want);
        }
        // Trees have exactly one spanning tree.
        let t = generators::path_graph(6, 1.0);
        assert_eq!(count_spanning_trees(&t), 1.0);
        assert_eq!(spanning_trees(&t, 10).unwrap().len(), 1);
    }

    #[test]
    fn enumerated_trees_are_all_distinct_spanning_trees() {
        let g = generators::complete_graph(5, 1.0);
        let trees = spanning_trees(&g, 1000).unwrap();
        let mut seen = std::collections::HashSet::new();
        for t in &trees {
            assert!(g.is_spanning_tree(t));
            assert!(seen.insert(t.clone()), "duplicate tree");
        }
    }

    #[test]
    fn visitor_streams_the_same_trees_as_the_materializer() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..10 {
            let n = rng.random_range(3..7usize);
            let g = generators::random_connected(n, 0.6, &mut rng, 0.2..3.0);
            let collected = spanning_trees(&g, 1_000_000).unwrap();
            let mut streamed: Vec<Vec<EdgeId>> = Vec::new();
            for_each_spanning_tree(&g, |t| {
                streamed.push(t.to_vec());
                std::ops::ControlFlow::Continue(())
            })
            .unwrap();
            assert_eq!(collected, streamed, "stream order or content diverged");
        }
    }

    #[test]
    fn visitor_early_break_stops_enumeration() {
        let g = generators::complete_graph(6, 1.0); // 1296 trees
        let mut seen = 0usize;
        for_each_spanning_tree(&g, |_| {
            seen += 1;
            if seen == 10 {
                std::ops::ControlFlow::Break(())
            } else {
                std::ops::ControlFlow::Continue(())
            }
        })
        .unwrap();
        assert_eq!(seen, 10);
    }

    #[test]
    fn fold_streaming_matches_collected_equilibria() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(43);
        for _ in 0..8 {
            let n = rng.random_range(3..7usize);
            let g = generators::random_connected(n, 0.5, &mut rng, 0.2..3.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let b = SubsidyAssignment::zero(game.graph());
            let eqs = equilibrium_trees(&game, &b, 1_000_000).unwrap();
            let best = best_equilibrium_tree(&game, &b, 1_000_000)
                .unwrap()
                .unwrap();
            assert_eq!(best.edges, eqs[0].edges);
            assert!((best.weight - eqs[0].weight).abs() < 1e-12);
            let count =
                fold_equilibrium_trees(&game, &b, 1_000_000, 0usize, |acc, _| acc + 1).unwrap();
            assert_eq!(count, eqs.len());
        }
    }

    #[test]
    fn expired_budget_cancels_enumeration() {
        let g = generators::complete_graph(5, 1.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let b = SubsidyAssignment::zero(game.graph());
        let budget = ndg_exec::Budget::with_deadline(std::time::Duration::ZERO);
        let err = price_of_stability_budgeted(&game, &b, 100_000, &budget).unwrap_err();
        assert_eq!(err, EnumError::Cancelled);
    }

    #[test]
    fn unlimited_budget_matches_unbudgeted_enumeration() {
        let g = generators::complete_graph(5, 1.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let b = SubsidyAssignment::zero(game.graph());
        let plain = price_of_stability(&game, &b, 100_000).unwrap();
        let budgeted =
            price_of_stability_budgeted(&game, &b, 100_000, &ndg_exec::Budget::unlimited())
                .unwrap();
        assert_eq!(plain, budgeted);
    }

    #[test]
    fn cap_is_enforced_and_reports_coverage() {
        // 6^4 = 1296 trees, cap 100: Kirchhoff rejects before enumerating,
        // so the error reports 0 visited and an estimate near 1296.
        let g = generators::complete_graph(6, 1.0);
        match spanning_trees(&g, 100).unwrap_err() {
            EnumError::CapExceeded {
                cap,
                visited,
                estimate,
            } => {
                assert_eq!(cap, 100);
                assert_eq!(visited, 0, "precheck must reject without enumerating");
                assert!((estimate - 1296.0).abs() < 1.0, "estimate {estimate}");
            }
            other => panic!("expected CapExceeded, got {other:?}"),
        }
        // K_5 has 125 trees; cap 120 is within the precheck margin
        // (120·1.1+16 = 148), so enumeration runs and stops at the cap.
        let g = generators::complete_graph(5, 1.0);
        match spanning_trees(&g, 120).unwrap_err() {
            EnumError::CapExceeded {
                cap,
                visited,
                estimate,
            } => {
                assert_eq!(cap, 120);
                assert_eq!(visited, 120, "must report how far the sweep got");
                assert!((estimate - 125.0).abs() < 1.0, "estimate {estimate}");
            }
            other => panic!("expected CapExceeded, got {other:?}"),
        }
    }

    /// The reflection of C_n rooted anywhere, as an edge permutation: edge i
    /// joins (i, i+1 mod n) in `cycle_graph`, and v ↦ −v maps edge i to
    /// edge n−1−i.
    fn cycle_reflection(n: usize) -> Vec<u32> {
        (0..n as u32).map(|i| n as u32 - 1 - i).collect()
    }

    #[test]
    fn edge_group_closure_and_fallbacks() {
        let refl = cycle_reflection(6);
        let group = EdgeGroup::from_generators(6, std::slice::from_ref(&refl));
        assert_eq!(group.order(), 2, "an involution generates Z/2");
        assert!(!group.is_trivial());
        // Malformed generators (wrong length, non-bijection) → trivial.
        assert!(EdgeGroup::from_generators(6, &[vec![0, 1, 2]]).is_trivial());
        assert!(EdgeGroup::from_generators(3, &[vec![0, 0, 1]]).is_trivial());
        assert!(EdgeGroup::from_generators(6, &[]).is_trivial());
        // Identity-only generators are accepted but collapse to trivial.
        assert!(EdgeGroup::from_generators(3, &[vec![0, 1, 2]]).is_trivial());
    }

    #[test]
    fn orbit_sizes_sum_to_tree_count() {
        // C_6 under its rooted reflection: 6 trees in orbits {2,2,2} or
        // {1,1,2,2} depending on parity — either way sizes sum to 6 and
        // every visited representative is lex-minimal in its orbit.
        let g = generators::cycle_graph(6, 1.0);
        let group = EdgeGroup::from_generators(6, &[cycle_reflection(6)]);
        let mut covered = 0u64;
        let mut reps = 0usize;
        for_each_spanning_tree_orbits(&g, &group, |tree, size| {
            assert!(g.is_spanning_tree(tree));
            covered += size;
            reps += 1;
            ControlFlow::Continue(())
        })
        .unwrap();
        assert_eq!(covered, 6, "orbit sizes must sum to the Kirchhoff count");
        assert!(reps < 6, "pruning must visit fewer representatives");

        // Trivial group: identical stream to the unpruned visitor.
        let trivial = EdgeGroup::trivial(6);
        let mut plain: Vec<Vec<EdgeId>> = Vec::new();
        for_each_spanning_tree(&g, |t| {
            plain.push(t.to_vec());
            ControlFlow::Continue(())
        })
        .unwrap();
        let mut orbit: Vec<Vec<EdgeId>> = Vec::new();
        for_each_spanning_tree_orbits(&g, &trivial, |t, size| {
            assert_eq!(size, 1);
            orbit.push(t.to_vec());
            ControlFlow::Continue(())
        })
        .unwrap();
        assert_eq!(plain, orbit);
    }

    #[test]
    fn orbit_drivers_match_unpruned_bit_for_bit() {
        let n = 8;
        let g = generators::cycle_graph(n, 1.0);
        let group = EdgeGroup::from_generators(n, &[cycle_reflection(n)]);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let b = SubsidyAssignment::zero(game.graph());
        let pos = price_of_stability(&game, &b, 100_000).unwrap();
        let pos_o = price_of_stability_orbits(&game, &b, 100_000, &group).unwrap();
        assert_eq!(
            pos.map(f64::to_bits),
            pos_o.map(f64::to_bits),
            "PoS must be bit-identical"
        );
        let poa = price_of_anarchy_trees(&game, &b, 100_000).unwrap();
        let poa_o = price_of_anarchy_trees_orbits(&game, &b, 100_000, &group).unwrap();
        assert_eq!(poa.map(f64::to_bits), poa_o.map(f64::to_bits));
        let best = best_equilibrium_tree(&game, &b, 100_000).unwrap();
        let best_o = best_equilibrium_tree_orbits(&game, &b, 100_000, &group).unwrap();
        match (best, best_o) {
            (Some(a), Some(o)) => {
                assert_eq!(a.edges, o.edges, "witness must map to the same input tree");
                assert_eq!(a.weight.to_bits(), o.weight.to_bits());
            }
            (a, o) => panic!("presence diverged: {a:?} vs {o:?}"),
        }
        // Weighted count: orbit sizes reweight the fold to the full total.
        let count = fold_equilibrium_trees(&game, &b, 100_000, 0u64, |c, _| c + 1).unwrap();
        let count_o =
            fold_equilibrium_trees_orbits(&game, &b, 100_000, &group, 0u64, |c, _, s| c + s)
                .unwrap();
        assert_eq!(count, count_o);
    }

    #[test]
    fn orbit_cap_trips_exactly_when_unpruned_trips() {
        // C_8 has 8 trees. cap 5 < 8 must trip for both sweeps; the orbit
        // error reports orbit-weighted coverage.
        let n = 8;
        let g = generators::cycle_graph(n, 1.0);
        let group = EdgeGroup::from_generators(n, &[cycle_reflection(n)]);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let b = SubsidyAssignment::zero(game.graph());
        assert!(matches!(
            fold_equilibrium_trees(&game, &b, 5, 0u64, |c, _| c + 1),
            Err(EnumError::CapExceeded { cap: 5, .. })
        ));
        assert!(matches!(
            fold_equilibrium_trees_orbits(&game, &b, 5, &group, 0u64, |c, _, s| c + s),
            Err(EnumError::CapExceeded { cap: 5, .. })
        ));
        // cap 8 == tree count: neither trips.
        assert!(fold_equilibrium_trees(&game, &b, 8, 0u64, |c, _| c + 1).is_ok());
        assert!(fold_equilibrium_trees_orbits(&game, &b, 8, &group, 0u64, |c, _, s| c + s).is_ok());
    }

    #[test]
    fn disconnected_reported() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        assert_eq!(spanning_trees(&g, 10).unwrap_err(), EnumError::Disconnected);
    }

    #[test]
    fn pos_of_uniform_cycle() {
        // Unit cycle C_{n+1}, root 0: MST = any path, weight n. The paths
        // are all non-equilibria for n ≥ 2 except... no: each tree is the
        // cycle minus one edge. By symmetry all have weight n; a tree is an
        // equilibrium iff no player deviates; for the unit cycle the far
        // player always deviates (H_n > 1 for n ≥ 2). But dropping an edge
        // NOT incident to the root splits players across both sides —
        // those trees are equilibria when each side's cost stays ≤ 1…
        // Exact enumeration settles it; we assert PoS = 1 because all
        // spanning trees have identical weight n.
        let n = 5;
        let g = generators::cycle_graph(n + 1, 1.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let b = SubsidyAssignment::zero(game.graph());
        let eqs = equilibrium_trees(&game, &b, 100).unwrap();
        assert!(
            !eqs.is_empty(),
            "potential descent guarantees an equilibrium"
        );
        let pos = price_of_stability(&game, &b, 100).unwrap().unwrap();
        assert!((pos - 1.0).abs() < 1e-9, "all trees weigh n; PoS must be 1");
    }

    #[test]
    fn unsubsidized_game_always_has_equilibrium_tree() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10 {
            let n = rng.random_range(3..7usize);
            let g = generators::random_connected(n, 0.5, &mut rng, 0.2..3.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let b = SubsidyAssignment::zero(game.graph());
            let eqs = equilibrium_trees(&game, &b, 100_000).unwrap();
            assert!(!eqs.is_empty());
            let pos = price_of_stability(&game, &b, 100_000).unwrap().unwrap();
            let poa = price_of_anarchy_trees(&game, &b, 100_000).unwrap().unwrap();
            assert!(pos >= 1.0 - 1e-9);
            assert!(poa >= pos - 1e-12);
        }
    }

    #[test]
    fn dynamics_equilibrium_is_among_enumerated() {
        // Cross-validation: best-response dynamics lands on a tree that the
        // enumerator also classifies as an equilibrium (when it is a tree).
        use crate::dynamics::{dynamics_from_tree, MoveOrder};
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..8 {
            let n = rng.random_range(3..7usize);
            let g = generators::random_connected(n, 0.4, &mut rng, 0.3..3.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let mst = ndg_graph::kruskal(game.graph()).unwrap();
            let b = SubsidyAssignment::zero(game.graph());
            let res = dynamics_from_tree(&game, &mst, &b, MoveOrder::RoundRobin, 1000).unwrap();
            assert!(res.converged);
            let established = res.state.established_edges();
            if game.graph().is_spanning_tree(&established) {
                let eqs = equilibrium_trees(&game, &b, 100_000).unwrap();
                assert!(
                    eqs.iter().any(|t| t.edges == established),
                    "dynamics equilibrium missing from enumeration"
                );
            }
        }
    }
}
