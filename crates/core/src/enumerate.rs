//! Exhaustive enumeration for small games: all spanning trees, all
//! equilibrium trees, exact price of stability / anarchy.
//!
//! In a broadcast game every equilibrium of interest is a spanning tree
//! (an equilibrium containing a cycle only arises from zero-weight cycles,
//! and then an equally-weighted equilibrium tree exists — Section 2), so
//! exact PoS on small instances reduces to scanning spanning trees.
//!
//! The enumerator is a *streaming visitor* over a rollback union-find:
//! each tree is handed to the caller as it is produced (O(n) live state,
//! no per-branch clones), and the equilibrium drivers test trees in
//! bounded parallel chunks instead of materializing `Vec<Vec<EdgeId>>`
//! first — peak memory no longer scales with the number of spanning
//! trees. Kirchhoff's matrix-tree determinant predicts the count so the
//! cap can reject hopeless instances before enumerating a single tree.

use crate::broadcast::is_tree_equilibrium;
use crate::game::NetworkDesignGame;
use crate::subsidy::SubsidyAssignment;
use ndg_graph::{EdgeId, Graph, NodeId, RollbackUnionFind, RootedTree};
use std::fmt;
use std::ops::ControlFlow;

/// Errors from the enumeration pipeline.
#[derive(Clone, Debug, PartialEq)]
pub enum EnumError {
    /// More spanning trees than the cap.
    CapExceeded { cap: usize },
    /// The graph has no spanning tree.
    Disconnected,
    /// The caller's [`ndg_exec::Budget`] expired mid-enumeration.
    Cancelled,
}

impl fmt::Display for EnumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnumError::CapExceeded { cap } => write!(f, "more than {cap} spanning trees"),
            EnumError::Disconnected => write!(f, "graph is disconnected"),
            EnumError::Cancelled => write!(f, "enumeration cancelled by budget"),
        }
    }
}

impl std::error::Error for EnumError {}

/// Number of spanning trees by Kirchhoff's matrix-tree theorem
/// (determinant of a Laplacian minor; exact up to `f64` rounding).
pub fn count_spanning_trees(g: &Graph) -> f64 {
    let n = g.node_count();
    if n <= 1 {
        return 1.0;
    }
    // Laplacian over multigraph edge counts.
    let mut lap = vec![vec![0.0f64; n]; n];
    for (_, e) in g.edges() {
        let (u, v) = (e.u.index(), e.v.index());
        lap[u][u] += 1.0;
        lap[v][v] += 1.0;
        lap[u][v] -= 1.0;
        lap[v][u] -= 1.0;
    }
    // Delete last row/column, then Gaussian elimination with partial pivot.
    let m = n - 1;
    let mut a: Vec<Vec<f64>> = (0..m).map(|i| lap[i][..m].to_vec()).collect();
    let mut det = 1.0f64;
    for col in 0..m {
        let pivot_row = (col..m)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("nonempty range");
        if a[pivot_row][col].abs() < 1e-12 {
            return 0.0;
        }
        if pivot_row != col {
            a.swap(pivot_row, col);
            det = -det;
        }
        det *= a[col][col];
        let inv = 1.0 / a[col][col];
        for row in (col + 1)..m {
            let factor = a[row][col] * inv;
            if factor == 0.0 {
                continue;
            }
            let (upper, lower) = a.split_at_mut(row);
            let pivot_row = &upper[col][col..];
            for (val, &p) in lower[0][col..].iter_mut().zip(pivot_row) {
                *val -= factor * p;
            }
        }
    }
    det.round().max(0.0)
}

/// Visit every spanning tree of `g` exactly once, in include/exclude
/// lexicographic edge order, without materializing any of them: `visit`
/// receives each tree as a borrowed edge slice valid for that call only.
/// Return [`ControlFlow::Break`] from the visitor to stop early.
///
/// Live state is O(n + m) — one rollback union-find and the current
/// prefix — regardless of how many trees the graph has.
pub fn for_each_spanning_tree<F>(g: &Graph, mut visit: F) -> Result<(), EnumError>
where
    F: FnMut(&[EdgeId]) -> ControlFlow<()>,
{
    let n = g.node_count();
    if !g.is_connected() {
        return Err(EnumError::Disconnected);
    }
    if n <= 1 {
        let _ = visit(&[]);
        return Ok(());
    }
    let m = g.edge_count();
    let mut chosen: Vec<EdgeId> = Vec::with_capacity(n - 1);
    let mut uf = RollbackUnionFind::new(n);
    let _ = rec(g, 0, &mut uf, &mut chosen, &mut visit, n, m);
    return Ok(());

    fn rec<F>(
        g: &Graph,
        idx: usize,
        uf: &mut RollbackUnionFind,
        chosen: &mut Vec<EdgeId>,
        visit: &mut F,
        n: usize,
        m: usize,
    ) -> ControlFlow<()>
    where
        F: FnMut(&[EdgeId]) -> ControlFlow<()>,
    {
        if chosen.len() == n - 1 {
            return visit(chosen);
        }
        if idx == m || chosen.len() + (m - idx) < n - 1 {
            return ControlFlow::Continue(());
        }
        let e = EdgeId(idx as u32);
        let (u, v) = g.endpoints(e);
        // Branch 1: include e (unless it closes a cycle).
        let mark = uf.mark();
        if uf.union(u.index(), v.index()) {
            chosen.push(e);
            let flow = rec(g, idx + 1, uf, chosen, visit, n, m);
            chosen.pop();
            uf.rollback_to(mark);
            flow?;
        }
        // Branch 2: exclude e — only if the rest can still connect
        // (probed on the same union-find, then rolled back).
        let mark = uf.mark();
        let mut components = uf.set_count();
        for later in (idx + 1)..m {
            let (a, b) = g.endpoints(EdgeId(later as u32));
            if uf.union(a.index(), b.index()) {
                components -= 1;
                if components == 1 {
                    break;
                }
            }
        }
        uf.rollback_to(mark);
        if components == 1 {
            return rec(g, idx + 1, uf, chosen, visit, n, m);
        }
        ControlFlow::Continue(())
    }
}

/// Whether Kirchhoff's determinant proves the spanning-tree count exceeds
/// `cap`. Conservative: a generous margin absorbs the determinant's float
/// rounding, so `false` never means "within cap" — it means "enumerate
/// and count exactly".
fn count_certainly_exceeds(g: &Graph, cap: usize) -> bool {
    let det = count_spanning_trees(g);
    !det.is_nan() && det > cap as f64 * 1.1 + 16.0
}

/// Enumerate all spanning trees (as sorted edge-id vectors), up to `cap`.
///
/// Prefer [`for_each_spanning_tree`] where the trees can be consumed as a
/// stream: this wrapper materializes O(#trees · n) memory by definition.
pub fn spanning_trees(g: &Graph, cap: usize) -> Result<Vec<Vec<EdgeId>>, EnumError> {
    if g.is_connected() && count_certainly_exceeds(g, cap) {
        return Err(EnumError::CapExceeded { cap });
    }
    let mut out: Vec<Vec<EdgeId>> = Vec::new();
    let mut capped = false;
    for_each_spanning_tree(g, |tree| {
        if out.len() >= cap {
            capped = true;
            return ControlFlow::Break(());
        }
        out.push(tree.to_vec());
        ControlFlow::Continue(())
    })?;
    if capped {
        return Err(EnumError::CapExceeded { cap });
    }
    Ok(out)
}

/// An equilibrium spanning tree with its weight.
#[derive(Clone, Debug)]
pub struct EquilibriumTree {
    /// Sorted edge ids of the tree.
    pub edges: Vec<EdgeId>,
    /// `wgt(T)`.
    pub weight: f64,
}

/// Trees per streaming batch: bounds peak memory at O(`CHUNK` · n) while
/// giving the parallel equilibrium scan enough work per dispatch.
const CHUNK: usize = 1024;

/// Stream every spanning tree through the Lemma 2 equilibrium check in
/// parallel chunks, folding each equilibrium into `acc` as it is found.
/// Peak memory is O(`CHUNK` · n + |acc|), never O(#trees · n).
pub fn fold_equilibrium_trees<T, F>(
    game: &NetworkDesignGame,
    b: &SubsidyAssignment,
    cap: usize,
    acc: T,
    fold: F,
) -> Result<T, EnumError>
where
    F: FnMut(T, EquilibriumTree) -> T,
    T: Send,
{
    fold_equilibrium_trees_budgeted(game, b, cap, acc, fold, &ndg_exec::Budget::unlimited())
}

/// [`fold_equilibrium_trees`] under a cooperative [`ndg_exec::Budget`]:
/// the budget is checked once per streamed chunk (every 1024 trees —
/// the same boundary at which the parallel Lemma 2 scan dispatches) and
/// once before the final partial chunk. Expiry aborts the enumeration
/// with [`EnumError::Cancelled`]; an unlimited budget changes nothing.
pub fn fold_equilibrium_trees_budgeted<T, F>(
    game: &NetworkDesignGame,
    b: &SubsidyAssignment,
    cap: usize,
    mut acc: T,
    mut fold: F,
    budget: &ndg_exec::Budget,
) -> Result<T, EnumError>
where
    F: FnMut(T, EquilibriumTree) -> T,
    T: Send,
{
    let g = game.graph();
    if g.is_connected() && count_certainly_exceeds(g, cap) {
        return Err(EnumError::CapExceeded { cap });
    }
    if budget.expired() {
        return Err(EnumError::Cancelled);
    }
    let root = game.root().unwrap_or(NodeId(0));
    let mut chunk: Vec<Vec<EdgeId>> = Vec::with_capacity(CHUNK);
    let mut total = 0usize;
    let mut capped = false;
    let mut cancelled = false;
    let mut acc_slot = Some(acc);
    for_each_spanning_tree(g, |tree| {
        if total >= cap {
            capped = true;
            return ControlFlow::Break(());
        }
        total += 1;
        chunk.push(tree.to_vec());
        if chunk.len() == CHUNK {
            if budget.expired() {
                cancelled = true;
                return ControlFlow::Break(());
            }
            let mut a = acc_slot.take().expect("accumulator is always restored");
            for eq in scan_chunk(game, b, root, &chunk) {
                a = fold(a, eq);
            }
            acc_slot = Some(a);
            chunk.clear();
        }
        ControlFlow::Continue(())
    })?;
    if cancelled {
        return Err(EnumError::Cancelled);
    }
    if capped {
        return Err(EnumError::CapExceeded { cap });
    }
    if budget.expired() {
        return Err(EnumError::Cancelled);
    }
    acc = acc_slot.take().expect("accumulator is always restored");
    for eq in scan_chunk(game, b, root, &chunk) {
        acc = fold(acc, eq);
    }
    Ok(acc)
}

/// Lemma-2-check one chunk of trees on the shared executor, preserving the
/// chunk's enumeration order in the result.
fn scan_chunk(
    game: &NetworkDesignGame,
    b: &SubsidyAssignment,
    root: NodeId,
    chunk: &[Vec<EdgeId>],
) -> Vec<EquilibriumTree> {
    let g = game.graph();
    let check = |edges: &Vec<EdgeId>| -> Option<EquilibriumTree> {
        let rt = RootedTree::new(g, edges, root).ok()?;
        if is_tree_equilibrium(game, &rt, b) {
            Some(EquilibriumTree {
                edges: edges.clone(),
                weight: g.weight_of(edges),
            })
        } else {
            None
        }
    };
    // Small chunks (the final partial one, or tiny instances) stay on the
    // caller's stack; full chunks fan out in enumeration order.
    let ex = if chunk.len() < 128 {
        ndg_exec::Executor::sequential()
    } else {
        ndg_exec::Executor::from_env()
    };
    ex.par_map(chunk, check).into_iter().flatten().collect()
}

/// All spanning trees of the broadcast game's graph that are equilibria of
/// the extension with `b` (Lemma 2 check per tree, parallel over streamed
/// chunks), sorted by weight then edge ids.
pub fn equilibrium_trees(
    game: &NetworkDesignGame,
    b: &SubsidyAssignment,
    cap: usize,
) -> Result<Vec<EquilibriumTree>, EnumError> {
    let mut found = fold_equilibrium_trees(game, b, cap, Vec::new(), |mut acc, eq| {
        acc.push(eq);
        acc
    })?;
    found.sort_by(|a, b| {
        a.weight
            .total_cmp(&b.weight)
            .then_with(|| a.edges.cmp(&b.edges))
    });
    Ok(found)
}

/// `(a.weight, a.edges) < (b.weight, b.edges)` — the enumeration's
/// canonical tree order.
fn tree_lt(a: &EquilibriumTree, b: &EquilibriumTree) -> bool {
    a.weight
        .total_cmp(&b.weight)
        .then_with(|| a.edges.cmp(&b.edges))
        .is_lt()
}

/// The minimum-weight equilibrium tree, if any. Streams: O(n) live state
/// per worker instead of collecting every equilibrium first.
pub fn best_equilibrium_tree(
    game: &NetworkDesignGame,
    b: &SubsidyAssignment,
    cap: usize,
) -> Result<Option<EquilibriumTree>, EnumError> {
    fold_equilibrium_trees(
        game,
        b,
        cap,
        None,
        |best: Option<EquilibriumTree>, eq| match best {
            Some(cur) if tree_lt(&cur, &eq) => Some(cur),
            _ => Some(eq),
        },
    )
}

/// Exact price of stability of a broadcast game over spanning-tree states:
/// `min_{equilibrium T} wgt(T) / wgt(MST)`. `Ok(None)` if no equilibrium
/// tree exists (possible in principle only under subsidy-modified games;
/// the unsubsidized game always has one by potential descent).
pub fn price_of_stability(
    game: &NetworkDesignGame,
    b: &SubsidyAssignment,
    cap: usize,
) -> Result<Option<f64>, EnumError> {
    price_of_stability_budgeted(game, b, cap, &ndg_exec::Budget::unlimited())
}

/// [`price_of_stability`] under a cooperative [`ndg_exec::Budget`] (checked
/// at enumeration chunk boundaries; expiry is [`EnumError::Cancelled`]).
pub fn price_of_stability_budgeted(
    game: &NetworkDesignGame,
    b: &SubsidyAssignment,
    cap: usize,
    budget: &ndg_exec::Budget,
) -> Result<Option<f64>, EnumError> {
    let opt = ndg_graph::mst_weight(game.graph()).map_err(|_| EnumError::Disconnected)?;
    let best = fold_equilibrium_trees_budgeted(
        game,
        b,
        cap,
        None,
        |best: Option<EquilibriumTree>, eq| match best {
            Some(cur) if tree_lt(&cur, &eq) => Some(cur),
            _ => Some(eq),
        },
        budget,
    )?;
    Ok(best.map(|t| t.weight / opt))
}

/// Exact price of anarchy over spanning-tree states:
/// `max_{equilibrium T} wgt(T) / wgt(MST)`. Streams like
/// [`best_equilibrium_tree`].
pub fn price_of_anarchy_trees(
    game: &NetworkDesignGame,
    b: &SubsidyAssignment,
    cap: usize,
) -> Result<Option<f64>, EnumError> {
    let opt = ndg_graph::mst_weight(game.graph()).map_err(|_| EnumError::Disconnected)?;
    let worst = fold_equilibrium_trees(
        game,
        b,
        cap,
        None,
        |worst: Option<EquilibriumTree>, eq| match worst {
            Some(cur) if tree_lt(&eq, &cur) => Some(cur),
            _ => Some(eq),
        },
    )?;
    Ok(worst.map(|t| t.weight / opt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndg_graph::generators;

    #[test]
    fn counts_match_known_formulas() {
        // Cycle C_n has n spanning trees.
        for n in 3..8usize {
            let g = generators::cycle_graph(n, 1.0);
            assert_eq!(count_spanning_trees(&g) as usize, n);
            assert_eq!(spanning_trees(&g, 100).unwrap().len(), n);
        }
        // K_n has n^(n−2) spanning trees (Cayley).
        for n in 3..6usize {
            let g = generators::complete_graph(n, 1.0);
            let want = (n as f64).powi(n as i32 - 2) as usize;
            assert_eq!(count_spanning_trees(&g) as usize, want);
            assert_eq!(spanning_trees(&g, 1000).unwrap().len(), want);
        }
        // Trees have exactly one spanning tree.
        let t = generators::path_graph(6, 1.0);
        assert_eq!(count_spanning_trees(&t), 1.0);
        assert_eq!(spanning_trees(&t, 10).unwrap().len(), 1);
    }

    #[test]
    fn enumerated_trees_are_all_distinct_spanning_trees() {
        let g = generators::complete_graph(5, 1.0);
        let trees = spanning_trees(&g, 1000).unwrap();
        let mut seen = std::collections::HashSet::new();
        for t in &trees {
            assert!(g.is_spanning_tree(t));
            assert!(seen.insert(t.clone()), "duplicate tree");
        }
    }

    #[test]
    fn visitor_streams_the_same_trees_as_the_materializer() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..10 {
            let n = rng.random_range(3..7usize);
            let g = generators::random_connected(n, 0.6, &mut rng, 0.2..3.0);
            let collected = spanning_trees(&g, 1_000_000).unwrap();
            let mut streamed: Vec<Vec<EdgeId>> = Vec::new();
            for_each_spanning_tree(&g, |t| {
                streamed.push(t.to_vec());
                std::ops::ControlFlow::Continue(())
            })
            .unwrap();
            assert_eq!(collected, streamed, "stream order or content diverged");
        }
    }

    #[test]
    fn visitor_early_break_stops_enumeration() {
        let g = generators::complete_graph(6, 1.0); // 1296 trees
        let mut seen = 0usize;
        for_each_spanning_tree(&g, |_| {
            seen += 1;
            if seen == 10 {
                std::ops::ControlFlow::Break(())
            } else {
                std::ops::ControlFlow::Continue(())
            }
        })
        .unwrap();
        assert_eq!(seen, 10);
    }

    #[test]
    fn fold_streaming_matches_collected_equilibria() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(43);
        for _ in 0..8 {
            let n = rng.random_range(3..7usize);
            let g = generators::random_connected(n, 0.5, &mut rng, 0.2..3.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let b = SubsidyAssignment::zero(game.graph());
            let eqs = equilibrium_trees(&game, &b, 1_000_000).unwrap();
            let best = best_equilibrium_tree(&game, &b, 1_000_000)
                .unwrap()
                .unwrap();
            assert_eq!(best.edges, eqs[0].edges);
            assert!((best.weight - eqs[0].weight).abs() < 1e-12);
            let count =
                fold_equilibrium_trees(&game, &b, 1_000_000, 0usize, |acc, _| acc + 1).unwrap();
            assert_eq!(count, eqs.len());
        }
    }

    #[test]
    fn expired_budget_cancels_enumeration() {
        let g = generators::complete_graph(5, 1.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let b = SubsidyAssignment::zero(game.graph());
        let budget = ndg_exec::Budget::with_deadline(std::time::Duration::ZERO);
        let err = price_of_stability_budgeted(&game, &b, 100_000, &budget).unwrap_err();
        assert_eq!(err, EnumError::Cancelled);
    }

    #[test]
    fn unlimited_budget_matches_unbudgeted_enumeration() {
        let g = generators::complete_graph(5, 1.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let b = SubsidyAssignment::zero(game.graph());
        let plain = price_of_stability(&game, &b, 100_000).unwrap();
        let budgeted =
            price_of_stability_budgeted(&game, &b, 100_000, &ndg_exec::Budget::unlimited())
                .unwrap();
        assert_eq!(plain, budgeted);
    }

    #[test]
    fn cap_is_enforced() {
        let g = generators::complete_graph(6, 1.0); // 6^4 = 1296 trees
        assert_eq!(
            spanning_trees(&g, 100).unwrap_err(),
            EnumError::CapExceeded { cap: 100 }
        );
    }

    #[test]
    fn disconnected_reported() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        assert_eq!(spanning_trees(&g, 10).unwrap_err(), EnumError::Disconnected);
    }

    #[test]
    fn pos_of_uniform_cycle() {
        // Unit cycle C_{n+1}, root 0: MST = any path, weight n. The paths
        // are all non-equilibria for n ≥ 2 except... no: each tree is the
        // cycle minus one edge. By symmetry all have weight n; a tree is an
        // equilibrium iff no player deviates; for the unit cycle the far
        // player always deviates (H_n > 1 for n ≥ 2). But dropping an edge
        // NOT incident to the root splits players across both sides —
        // those trees are equilibria when each side's cost stays ≤ 1…
        // Exact enumeration settles it; we assert PoS = 1 because all
        // spanning trees have identical weight n.
        let n = 5;
        let g = generators::cycle_graph(n + 1, 1.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let b = SubsidyAssignment::zero(game.graph());
        let eqs = equilibrium_trees(&game, &b, 100).unwrap();
        assert!(
            !eqs.is_empty(),
            "potential descent guarantees an equilibrium"
        );
        let pos = price_of_stability(&game, &b, 100).unwrap().unwrap();
        assert!((pos - 1.0).abs() < 1e-9, "all trees weigh n; PoS must be 1");
    }

    #[test]
    fn unsubsidized_game_always_has_equilibrium_tree() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10 {
            let n = rng.random_range(3..7usize);
            let g = generators::random_connected(n, 0.5, &mut rng, 0.2..3.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let b = SubsidyAssignment::zero(game.graph());
            let eqs = equilibrium_trees(&game, &b, 100_000).unwrap();
            assert!(!eqs.is_empty());
            let pos = price_of_stability(&game, &b, 100_000).unwrap().unwrap();
            let poa = price_of_anarchy_trees(&game, &b, 100_000).unwrap().unwrap();
            assert!(pos >= 1.0 - 1e-9);
            assert!(poa >= pos - 1e-12);
        }
    }

    #[test]
    fn dynamics_equilibrium_is_among_enumerated() {
        // Cross-validation: best-response dynamics lands on a tree that the
        // enumerator also classifies as an equilibrium (when it is a tree).
        use crate::dynamics::{dynamics_from_tree, MoveOrder};
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..8 {
            let n = rng.random_range(3..7usize);
            let g = generators::random_connected(n, 0.4, &mut rng, 0.3..3.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let mst = ndg_graph::kruskal(game.graph()).unwrap();
            let b = SubsidyAssignment::zero(game.graph());
            let res = dynamics_from_tree(&game, &mst, &b, MoveOrder::RoundRobin, 1000).unwrap();
            assert!(res.converged);
            let established = res.state.established_edges();
            if game.graph().is_spanning_tree(&established) {
                let eqs = equilibrium_trees(&game, &b, 100_000).unwrap();
                assert!(
                    eqs.iter().any(|t| t.edges == established),
                    "dynamics equilibrium missing from enumeration"
                );
            }
        }
    }
}
