//! Game states: one strategy (simple path) per player.
//!
//! A state `T = (T₁, …, Tₙ)` induces per-edge usage counts `n_a(T)`; its
//! social cost is the total weight of established edges, which equals the
//! sum of player costs under fair sharing (Section 2).

use crate::game::NetworkDesignGame;
use ndg_graph::paths::is_simple_path;
use ndg_graph::{EdgeId, Graph, GraphError, NodeId, RootedTree};
use std::fmt;

/// Errors raised when building or mutating a state.
#[derive(Clone, Debug, PartialEq)]
pub enum StateError {
    /// Wrong number of strategy paths.
    WrongPlayerCount { got: usize, want: usize },
    /// Player `i`'s path is not a simple `sᵢ → tᵢ` path in the graph.
    InvalidPath { player: usize },
    /// The given edge set is not a spanning tree (for tree states).
    NotASpanningTree,
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::WrongPlayerCount { got, want } => {
                write!(f, "state has {got} paths for {want} players")
            }
            StateError::InvalidPath { player } => {
                write!(f, "player {player}'s strategy is not a simple s-t path")
            }
            StateError::NotASpanningTree => write!(f, "edge set is not a spanning tree"),
        }
    }
}

impl std::error::Error for StateError {}

impl From<GraphError> for StateError {
    fn from(_: GraphError) -> Self {
        StateError::NotASpanningTree
    }
}

/// A state of a network design game.
#[derive(Clone, Debug)]
pub struct State {
    paths: Vec<Vec<EdgeId>>,
    /// `usage[e] = n_a(T)`: number of players whose strategy contains `e`.
    usage: Vec<u32>,
}

impl State {
    /// Build a state from explicit per-player paths, validating each as a
    /// simple `sᵢ → tᵢ` path.
    pub fn new(game: &NetworkDesignGame, paths: Vec<Vec<EdgeId>>) -> Result<Self, StateError> {
        let n = game.num_players();
        if paths.len() != n {
            return Err(StateError::WrongPlayerCount {
                got: paths.len(),
                want: n,
            });
        }
        let g = game.graph();
        for (i, (p, player)) in paths.iter().zip(game.players()).enumerate() {
            if !is_simple_path(g, p, player.source, player.terminal) {
                return Err(StateError::InvalidPath { player: i });
            }
        }
        let mut usage = vec![0u32; g.edge_count()];
        for p in &paths {
            for &e in p {
                usage[e.index()] += 1;
            }
        }
        Ok(State { paths, usage })
    }

    /// Build the state induced by a spanning tree: every player uses the
    /// unique tree path between her endpoints. Returns the state together
    /// with the rooted view (rooted at the broadcast root if the game is a
    /// broadcast game, else at node 0).
    pub fn from_tree(
        game: &NetworkDesignGame,
        tree_edges: &[EdgeId],
    ) -> Result<(Self, RootedTree), StateError> {
        let g = game.graph();
        let root = game.root().unwrap_or(NodeId(0));
        let rt = RootedTree::new(g, tree_edges, root)?;
        let paths: Vec<Vec<EdgeId>> = game
            .players()
            .iter()
            .map(|p| rt.path_between(p.source, p.terminal))
            .collect();
        let state = State::new(game, paths)?;
        Ok((state, rt))
    }

    /// `n_a(T)` for edge `e`.
    #[inline]
    pub fn usage(&self, e: EdgeId) -> u32 {
        self.usage[e.index()]
    }

    /// `n_a^i(T)`: whether player `i` uses `e` (0/1 as bool).
    pub fn uses(&self, i: usize, e: EdgeId) -> bool {
        self.paths[i].contains(&e)
    }

    /// Player `i`'s strategy path.
    #[inline]
    pub fn path(&self, i: usize) -> &[EdgeId] {
        &self.paths[i]
    }

    /// Number of players.
    #[inline]
    pub fn num_players(&self) -> usize {
        self.paths.len()
    }

    /// Established edges (usage ≥ 1), sorted by id.
    pub fn established_edges(&self) -> Vec<EdgeId> {
        self.usage
            .iter()
            .enumerate()
            .filter(|(_, &u)| u > 0)
            .map(|(i, _)| EdgeId(i as u32))
            .collect()
    }

    /// Social cost `wgt(T)`: total weight of established edges.
    pub fn weight(&self, g: &Graph) -> f64 {
        self.usage
            .iter()
            .enumerate()
            .filter(|(_, &u)| u > 0)
            .map(|(i, _)| g.weight(EdgeId(i as u32)))
            .sum()
    }

    /// Replace player `i`'s strategy, updating usage counts. The new path
    /// must already be validated by the caller (e.g. a Dijkstra output).
    pub fn replace_path(&mut self, i: usize, new_path: Vec<EdgeId>) {
        let mut new_path = new_path;
        self.swap_path(i, &mut new_path);
    }

    /// Map this state through an instance relabeling: player `i`'s path
    /// becomes player `player_map[i]`'s path in `target`, with every edge
    /// id sent through `edge_map` (sequence order preserved — a path stays
    /// a path). The result is fully re-validated against `target`, so a
    /// mismatched mapping surfaces as a [`StateError`] rather than a
    /// corrupt state.
    pub fn permuted(
        &self,
        target: &NetworkDesignGame,
        player_map: &[usize],
        edge_map: &[EdgeId],
    ) -> Result<State, StateError> {
        let n = target.num_players();
        if player_map.len() != self.paths.len() || self.paths.len() != n {
            return Err(StateError::WrongPlayerCount {
                got: self.paths.len(),
                want: n,
            });
        }
        let mut paths: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        for (i, path) in self.paths.iter().enumerate() {
            let j = player_map[i];
            if j >= n {
                return Err(StateError::InvalidPath { player: i });
            }
            paths[j] = path
                .iter()
                .map(|e| {
                    edge_map
                        .get(e.index())
                        .copied()
                        .ok_or(StateError::InvalidPath { player: i })
                })
                .collect::<Result<_, _>>()?;
        }
        State::new(target, paths)
    }

    /// Allocation-recycling variant of [`replace_path`](Self::replace_path):
    /// player `i` adopts the path in `path`, and on return `path` holds her
    /// previous strategy (whose buffer the caller can keep reusing).
    pub fn swap_path(&mut self, i: usize, path: &mut Vec<EdgeId>) {
        for &e in &self.paths[i] {
            self.usage[e.index()] -= 1;
        }
        for e in path.iter() {
            self.usage[e.index()] += 1;
        }
        std::mem::swap(&mut self.paths[i], path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::Player;
    use ndg_graph::generators;
    use ndg_graph::kruskal;

    fn cycle_game(n: usize) -> NetworkDesignGame {
        NetworkDesignGame::broadcast(generators::cycle_graph(n, 1.0), NodeId(0)).unwrap()
    }

    #[test]
    fn tree_state_on_cycle() {
        let game = cycle_game(5);
        // Path tree 0-1-2-3-4 (drop the closing edge 4).
        let tree: Vec<EdgeId> = (0..4).map(EdgeId).collect();
        let (state, rt) = State::from_tree(&game, &tree).unwrap();
        assert_eq!(rt.root(), NodeId(0));
        // Player at node k uses edges 0..k: usage of edge i is 4 − i.
        assert_eq!(state.usage(EdgeId(0)), 4);
        assert_eq!(state.usage(EdgeId(3)), 1);
        assert_eq!(state.usage(EdgeId(4)), 0);
        assert_eq!(state.weight(game.graph()), 4.0);
        assert_eq!(state.established_edges().len(), 4);
        assert!(state.uses(3, EdgeId(0))); // player of node 4
        assert!(!state.uses(0, EdgeId(1))); // player of node 1 only uses edge 0
    }

    #[test]
    fn explicit_paths_validation() {
        let game = cycle_game(4);
        // Player of node 1 must connect 1 → 0.
        let bad = State::new(
            &game,
            vec![vec![EdgeId(1)], vec![EdgeId(1), EdgeId(0)], vec![EdgeId(3)]],
        );
        assert_eq!(bad.unwrap_err(), StateError::InvalidPath { player: 0 });
        let wrong_count = State::new(&game, vec![vec![EdgeId(0)]]);
        assert!(matches!(
            wrong_count,
            Err(StateError::WrongPlayerCount { got: 1, want: 3 })
        ));
    }

    #[test]
    fn non_tree_edge_set_rejected() {
        let game = cycle_game(4);
        let all: Vec<EdgeId> = game.graph().edge_ids().collect();
        assert_eq!(
            State::from_tree(&game, &all).unwrap_err(),
            StateError::NotASpanningTree
        );
    }

    #[test]
    fn replace_path_updates_usage() {
        let game = cycle_game(4);
        let tree: Vec<EdgeId> = (0..3).map(EdgeId).collect();
        let (mut state, _) = State::from_tree(&game, &tree).unwrap();
        // Player of node 3 (index 2) switches from [e2,e1,e0] to the
        // closing edge e3 (3 → 0 directly).
        assert_eq!(state.usage(EdgeId(0)), 3);
        state.replace_path(2, vec![EdgeId(3)]);
        assert_eq!(state.usage(EdgeId(0)), 2);
        assert_eq!(state.usage(EdgeId(2)), 0);
        assert_eq!(state.usage(EdgeId(3)), 1);
        assert_eq!(state.weight(game.graph()), 3.0);
    }

    #[test]
    fn sum_of_costs_equals_weight() {
        // Spot-check the identity wgt(T) = Σᵢ costᵢ(T) (Section 2).
        use crate::cost::player_cost;
        use crate::subsidy::SubsidyAssignment;
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10 {
            let n = rng.random_range(3..12);
            let g = generators::random_connected(n, 0.4, &mut rng, 0.5..4.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let tree = kruskal(game.graph()).unwrap();
            let (state, _) = State::from_tree(&game, &tree).unwrap();
            let b = SubsidyAssignment::zero(game.graph());
            let total: f64 = (0..game.num_players())
                .map(|i| player_cost(&game, &state, &b, i))
                .sum();
            assert!(
                (total - state.weight(game.graph())).abs() < 1e-9,
                "Σ costs {total} != wgt {}",
                state.weight(game.graph())
            );
        }
    }

    #[test]
    fn general_game_tree_state() {
        let g = generators::grid_graph(2, 3, 1.0);
        let game = NetworkDesignGame::new(
            g,
            vec![
                Player {
                    source: NodeId(0),
                    terminal: NodeId(5),
                },
                Player {
                    source: NodeId(2),
                    terminal: NodeId(3),
                },
            ],
        )
        .unwrap();
        let tree = kruskal(game.graph()).unwrap();
        let (state, _) = State::from_tree(&game, &tree).unwrap();
        assert_eq!(state.num_players(), 2);
        // Both paths valid by construction.
        assert!(!state.path(0).is_empty());
        assert!(!state.path(1).is_empty());
    }
}
