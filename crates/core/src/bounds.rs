//! Optimistic best-response lower bounds shared across players.
//!
//! The deviation weight of edge `a` for player `i` is
//! `w'_a = (w_a − b_a)/(n_a(T) + 1 − n_a^i(T))`, which is minimized (over
//! `n_a^i ∈ {0, 1}`) at the player-independent *optimistic* weight
//! `(w_a − b_a)/(n_a(T) + 1)`. A single Dijkstra from a terminal under the
//! optimistic weights therefore lower-bounds the best-response cost of
//! *every* player with that terminal at once (the graph is undirected, so
//! the terminal→source distance equals the source→terminal distance).
//!
//! The bound is sound in floating point as well: `f64` division and
//! addition are correctly rounded and monotone, so each optimistic edge
//! weight is `≤` the player's true deviation weight as computed elsewhere,
//! and shortest-path sums preserve the inequality up to the usual rounding
//! noise — callers compare through a slack well below [`crate::num::EPS`].
//!
//! This is what makes incremental dynamics fast: after a move, one
//! optimistic Dijkstra per distinct terminal (one total, for broadcast
//! games) re-certifies "no improving move possible" for almost all
//! players, and only the few suspects pay for an exact per-player
//! best-response Dijkstra. A player-set cache of "whose best response
//! touches a changed edge" is *not* sound here — a player whose cached
//! best response avoided edge `a` can still gain a brand-new improving
//! route through `a` when `n_a` rises — so the engine filters through this
//! admissible bound instead.

use crate::game::NetworkDesignGame;
use crate::state::State;
use crate::subsidy::SubsidyAssignment;
use ndg_graph::paths::DijkstraWorkspace;
use ndg_graph::{EdgeId, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Rounding slack added on top of the exact-arithmetic admissibility of
/// the optimistic bound (absolute; compare with `EPS = 1e-7`).
pub const BOUND_SLACK: f64 = 1e-9;

/// Per-player best-response lower bounds under the optimistic weights,
/// with the per-node optimistic distances kept as A* heuristics.
#[derive(Clone, Debug)]
pub struct OptimisticBounds {
    /// Distinct terminals with the players that target each.
    groups: Vec<(NodeId, Vec<u32>)>,
    /// `group_of[i]` = index into `groups`/`heuristics` for player `i`.
    group_of: Vec<u32>,
    /// `heuristics[k][v]` = optimistic distance from node `v` to
    /// `groups[k]`'s terminal — an admissible, consistent A* heuristic for
    /// every player of that group (valid after [`refresh`](Self::refresh)).
    heuristics: Vec<Vec<f64>>,
    /// `lower[i] = heuristics[group_of[i]][source_i]` ≤ best-response cost
    /// of player `i`.
    lower: Vec<f64>,
    ws: DijkstraWorkspace,
    /// Seeded-relaxation heap for [`update_for_added_edges`](Self::update_for_added_edges).
    relax_heap: BinaryHeap<Reverse<HeapEntry>>,
}

/// `(distance, node)` min-heap entry with total float order.
#[derive(Clone, Debug, PartialEq)]
struct HeapEntry(f64, u32);
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .total_cmp(&other.0)
            .then_with(|| self.1.cmp(&other.1))
    }
}

impl OptimisticBounds {
    /// Group the game's players by terminal (one group for broadcast
    /// games).
    pub fn new(game: &NetworkDesignGame) -> Self {
        let mut groups: Vec<(NodeId, Vec<u32>)> = Vec::new();
        let mut group_of = vec![0u32; game.num_players()];
        for (i, p) in game.players().iter().enumerate() {
            match groups.iter_mut().position(|(t, _)| *t == p.terminal) {
                Some(k) => {
                    groups[k].1.push(i as u32);
                    group_of[i] = k as u32;
                }
                None => {
                    group_of[i] = groups.len() as u32;
                    groups.push((p.terminal, vec![i as u32]));
                }
            }
        }
        let n = game.graph().node_count();
        OptimisticBounds {
            heuristics: vec![vec![f64::INFINITY; n]; groups.len()],
            groups,
            group_of,
            lower: vec![f64::NEG_INFINITY; game.num_players()],
            ws: DijkstraWorkspace::new(n),
            relax_heap: BinaryHeap::new(),
        }
    }

    /// Recompute the bounds for the current `state`: one optimistic
    /// Dijkstra per distinct terminal.
    pub fn refresh(&mut self, game: &NetworkDesignGame, state: &State, b: &SubsidyAssignment) {
        let g = game.graph();
        let players = game.players();
        for ((terminal, members), h) in self.groups.iter().zip(&mut self.heuristics) {
            self.ws.run(g, *terminal, None, |e| {
                b.residual(g, e) / (state.usage(e) + 1) as f64
            });
            for (v, slot) in h.iter_mut().enumerate() {
                *slot = self.ws.dist(ndg_graph::NodeId(v as u32));
            }
            for &i in members {
                self.lower[i as usize] = h[players[i as usize].source.index()];
            }
        }
    }

    /// Incrementally repair the heuristics after a move, given the edges
    /// whose usage count *increased* (the mover's newly adopted edges),
    /// with `state` already updated.
    ///
    /// Usage increases are the only changes that lower an optimistic
    /// weight, and lower weights are the only way a stored heuristic can
    /// become inadmissible — usage decreases merely raise weights, under
    /// which stale exact distances stay both admissible and consistent. A
    /// decrease-only seeded Dijkstra relaxation therefore restores the
    /// invariant `h ≤ current optimistic distance` (and consistency) by
    /// touching only the region the cheaper edges actually improve,
    /// instead of re-running a full Dijkstra per terminal per move. The
    /// bounds drift *looser* over time (weaker filtering, never wrong);
    /// callers re-tighten with a periodic [`refresh`](Self::refresh).
    pub fn update_for_added_edges(
        &mut self,
        game: &NetworkDesignGame,
        state: &State,
        b: &SubsidyAssignment,
        added: &[EdgeId],
    ) {
        if added.is_empty() {
            return;
        }
        let g = game.graph();
        let players = game.players();
        let opt_w = |e: EdgeId| b.residual(g, e) / (state.usage(e) + 1) as f64;
        for ((_, members), h) in self.groups.iter().zip(&mut self.heuristics) {
            self.relax_heap.clear();
            for &e in added {
                let w = opt_w(e);
                let (u, v) = g.endpoints(e);
                for (from, to) in [(u, v), (v, u)] {
                    let cand = h[from.index()] + w;
                    if cand < h[to.index()] {
                        h[to.index()] = cand;
                        self.relax_heap.push(Reverse(HeapEntry(cand, to.0)));
                    }
                }
            }
            while let Some(Reverse(HeapEntry(d, x))) = self.relax_heap.pop() {
                if d > h[x as usize] {
                    continue;
                }
                for &(y, e) in g.neighbors(NodeId(x)) {
                    let cand = d + opt_w(e);
                    if cand < h[y.index()] {
                        h[y.index()] = cand;
                        self.relax_heap.push(Reverse(HeapEntry(cand, y.0)));
                    }
                }
            }
            for &i in members {
                self.lower[i as usize] = h[players[i as usize].source.index()];
            }
        }
    }

    /// The lower bound for player `i` (from the last refresh).
    #[inline]
    pub fn lower(&self, i: usize) -> f64 {
        self.lower[i]
    }

    /// The per-node optimistic distances toward player `i`'s terminal —
    /// an admissible, consistent heuristic for
    /// [`DijkstraWorkspace::astar_below`] under `i`'s deviation weights.
    #[inline]
    pub fn heuristic(&self, i: usize) -> &[f64] {
        &self.heuristics[self.group_of[i] as usize]
    }

    /// Whether player `i` might hold a strict improvement on a current
    /// cost of `current`: `false` certifies that an exact best-response
    /// computation cannot find one.
    #[inline]
    pub fn may_improve(&self, i: usize, current: f64) -> bool {
        crate::num::strictly_lt(self.lower[i] - BOUND_SLACK, current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::best_response;
    use crate::state::State;
    use ndg_graph::{generators, kruskal, NodeId};
    use rand::prelude::*;

    #[test]
    fn bound_is_admissible_on_random_games() {
        let mut rng = StdRng::seed_from_u64(404);
        for _ in 0..30 {
            let n = rng.random_range(3..10usize);
            let g = generators::random_connected(n, 0.5, &mut rng, 0.2..3.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let tree = kruskal(game.graph()).unwrap();
            let (state, _) = State::from_tree(&game, &tree).unwrap();
            let mut b = SubsidyAssignment::zero(game.graph());
            for e in game.graph().edge_ids() {
                if rng.random_bool(0.3) {
                    let w = game.graph().weight(e);
                    b.set(game.graph(), e, rng.random_range(0.0..=w));
                }
            }
            let mut bounds = OptimisticBounds::new(&game);
            bounds.refresh(&game, &state, &b);
            for i in 0..game.num_players() {
                let (_, br) = best_response(&game, &state, &b, i);
                assert!(
                    bounds.lower(i) <= br + BOUND_SLACK,
                    "player {i}: bound {} > best response {br}",
                    bounds.lower(i)
                );
            }
        }
    }

    #[test]
    fn filter_never_hides_an_improving_move() {
        use crate::cost::player_cost;
        use crate::num::strictly_lt;
        let mut rng = StdRng::seed_from_u64(405);
        for _ in 0..30 {
            let n = rng.random_range(3..9usize);
            let g = generators::random_connected(n, 0.5, &mut rng, 0.2..3.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let tree = kruskal(game.graph()).unwrap();
            let (state, _) = State::from_tree(&game, &tree).unwrap();
            let b = SubsidyAssignment::zero(game.graph());
            let mut bounds = OptimisticBounds::new(&game);
            bounds.refresh(&game, &state, &b);
            for i in 0..game.num_players() {
                let current = player_cost(&game, &state, &b, i);
                let (_, br) = best_response(&game, &state, &b, i);
                if strictly_lt(br, current) {
                    assert!(
                        bounds.may_improve(i, current),
                        "filter hid an improving move for player {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn incremental_update_keeps_bounds_admissible() {
        use crate::equilibrium::best_response;
        use ndg_graph::EdgeId;
        let mut rng = StdRng::seed_from_u64(406);
        for _ in 0..20 {
            let n = rng.random_range(4..10usize);
            let g = generators::random_connected(n, 0.5, &mut rng, 0.2..3.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let tree = kruskal(game.graph()).unwrap();
            let (mut state, _) = State::from_tree(&game, &tree).unwrap();
            let b = SubsidyAssignment::zero(game.graph());
            let mut bounds = OptimisticBounds::new(&game);
            bounds.refresh(&game, &state, &b);
            // A few best-response moves, repairing incrementally after each.
            for _ in 0..6 {
                let i = rng.random_range(0..game.num_players());
                let (path, _) = best_response(&game, &state, &b, i);
                let added: Vec<EdgeId> = path
                    .iter()
                    .copied()
                    .filter(|e| !state.uses(i, *e))
                    .collect();
                state.replace_path(i, path);
                bounds.update_for_added_edges(&game, &state, &b, &added);
                for j in 0..game.num_players() {
                    let (_, br) = best_response(&game, &state, &b, j);
                    assert!(
                        bounds.lower(j) <= br + BOUND_SLACK,
                        "incrementally updated bound {} > best response {br}",
                        bounds.lower(j)
                    );
                }
                // The whole heuristic surface must stay below the exact
                // optimistic distances (per-node admissibility for A*).
                let mut fresh = OptimisticBounds::new(&game);
                fresh.refresh(&game, &state, &b);
                for i in 0..game.num_players() {
                    for v in 0..game.graph().node_count() {
                        assert!(
                            bounds.heuristic(i)[v] <= fresh.heuristic(i)[v] + BOUND_SLACK,
                            "node {v}: incremental h above exact optimistic distance"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn general_games_group_players_by_terminal() {
        use crate::game::Player;
        let g = generators::grid_graph(3, 3, 1.0);
        let players = vec![
            Player {
                source: NodeId(0),
                terminal: NodeId(8),
            },
            Player {
                source: NodeId(2),
                terminal: NodeId(8),
            },
            Player {
                source: NodeId(6),
                terminal: NodeId(4),
            },
        ];
        let game = NetworkDesignGame::new(g, players).unwrap();
        let bounds = OptimisticBounds::new(&game);
        assert_eq!(bounds.groups.len(), 2);
        let tree = kruskal(game.graph()).unwrap();
        let (state, _) = State::from_tree(&game, &tree).unwrap();
        let b = SubsidyAssignment::zero(game.graph());
        let mut bounds = bounds;
        bounds.refresh(&game, &state, &b);
        for i in 0..game.num_players() {
            let (_, br) = best_response(&game, &state, &b, i);
            assert!(bounds.lower(i) <= br + BOUND_SLACK);
        }
    }
}
