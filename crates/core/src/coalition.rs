//! Coalitional deviations (Section 6's closing open problem).
//!
//! The paper's equilibria are resilient to *unilateral* deviations only;
//! its final section asks about coalitions. This module implements the
//! strong-equilibrium check for bounded coalition sizes on small games: a
//! coalition `S` deviates profitably if there is a joint re-routing of all
//! members that makes *every* member strictly better off (costs evaluated
//! in the post-deviation state, where the members share edges with each
//! other and with the non-members). Exhaustive over simple paths — small
//! instances only.

use crate::cost::player_cost;
use crate::game::NetworkDesignGame;
use crate::num::strictly_lt;
use crate::state::State;
use crate::subsidy::SubsidyAssignment;
use ndg_graph::{EdgeId, Graph, NodeId};

/// A profitable coalitional deviation: the coalition members with their
/// new paths and new costs.
#[derive(Clone, Debug)]
pub struct CoalitionDeviation {
    /// The deviating players.
    pub members: Vec<usize>,
    /// New path per member (same order as `members`).
    pub paths: Vec<Vec<EdgeId>>,
    /// Old and new cost per member.
    pub costs: Vec<(f64, f64)>,
}

/// Enumerate all simple `s → t` paths of `g` (test-sized graphs only).
pub fn all_simple_paths(g: &Graph, s: NodeId, t: NodeId) -> Vec<Vec<EdgeId>> {
    let mut out = Vec::new();
    let mut scratch = PathScratch::new(g.node_count());
    all_simple_paths_into(g, s, t, &mut scratch, &mut out);
    out
}

/// DFS scratch for [`all_simple_paths_into`]: the visited marks and the
/// working path, reusable across calls (the `DijkstraWorkspace` pattern —
/// no fresh allocations when enumerating one strategy set per player in a
/// loop).
#[derive(Clone, Debug, Default)]
pub struct PathScratch {
    visited: Vec<bool>,
    path: Vec<EdgeId>,
}

impl PathScratch {
    /// Scratch sized for an `n`-node graph (grows on demand).
    pub fn new(n: usize) -> Self {
        PathScratch {
            visited: vec![false; n],
            path: Vec::new(),
        }
    }
}

/// [`all_simple_paths`] into caller-provided scratch: `out` is cleared and
/// refilled (element buffers are the paths themselves, which the caller
/// keeps), the DFS state lives in `scratch`.
pub fn all_simple_paths_into(
    g: &Graph,
    s: NodeId,
    t: NodeId,
    scratch: &mut PathScratch,
    out: &mut Vec<Vec<EdgeId>>,
) {
    out.clear();
    if scratch.visited.len() < g.node_count() {
        scratch.visited.resize(g.node_count(), false);
    }
    scratch.visited.fill(false);
    scratch.path.clear();
    dfs(g, s, t, &mut scratch.visited, &mut scratch.path, out);

    fn dfs(
        g: &Graph,
        cur: NodeId,
        t: NodeId,
        visited: &mut Vec<bool>,
        path: &mut Vec<EdgeId>,
        out: &mut Vec<Vec<EdgeId>>,
    ) {
        if cur == t {
            out.push(path.clone());
            return;
        }
        visited[cur.index()] = true;
        for &(nb, e) in g.neighbors(cur) {
            if !visited[nb.index()] {
                path.push(e);
                dfs(g, nb, t, visited, path, out);
                path.pop();
            }
        }
        visited[cur.index()] = false;
    }
}

/// Find a profitable deviation by some coalition of size ≤ `max_size`
/// (sizes are tried in increasing order; `max_size = 1` reproduces the
/// unilateral check). Exhaustive and exponential — small games only.
pub fn find_coalition_deviation(
    game: &NetworkDesignGame,
    state: &State,
    b: &SubsidyAssignment,
    max_size: usize,
) -> Option<CoalitionDeviation> {
    let n = game.num_players();
    let g = game.graph();
    // Pre-enumerate each player's strategy set, reusing one DFS scratch.
    let mut scratch = PathScratch::new(g.node_count());
    let strategies: Vec<Vec<Vec<EdgeId>>> = game
        .players()
        .iter()
        .map(|p| {
            let mut paths = Vec::new();
            all_simple_paths_into(g, p.source, p.terminal, &mut scratch, &mut paths);
            paths
        })
        .collect();
    let old_costs: Vec<f64> = (0..n).map(|i| player_cost(game, state, b, i)).collect();

    for size in 1..=max_size.min(n) {
        let mut members = Vec::with_capacity(size);
        if let Some(dev) = combos(
            game,
            state,
            b,
            &strategies,
            &old_costs,
            0,
            size,
            &mut members,
        ) {
            return Some(dev);
        }
    }
    return None;

    /// Recursively enumerate all size-`size` subsets of `{start..n}`.
    #[allow(clippy::too_many_arguments)]
    fn combos(
        game: &NetworkDesignGame,
        state: &State,
        b: &SubsidyAssignment,
        strategies: &[Vec<Vec<EdgeId>>],
        old_costs: &[f64],
        start: usize,
        size: usize,
        members: &mut Vec<usize>,
    ) -> Option<CoalitionDeviation> {
        if members.len() == size {
            return try_coalition(game, state, b, members, strategies, old_costs);
        }
        for i in start..old_costs.len() {
            members.push(i);
            let found = combos(game, state, b, strategies, old_costs, i + 1, size, members);
            members.pop();
            if found.is_some() {
                return found;
            }
        }
        None
    }
}

fn try_coalition(
    game: &NetworkDesignGame,
    state: &State,
    b: &SubsidyAssignment,
    members: &[usize],
    strategies: &[Vec<Vec<EdgeId>>],
    old_costs: &[f64],
) -> Option<CoalitionDeviation> {
    // Iterate the cartesian product of the members' strategy sets.
    let sizes: Vec<usize> = members.iter().map(|&i| strategies[i].len()).collect();
    let mut choice = vec![0usize; members.len()];
    loop {
        // Build the joint state and evaluate.
        let mut trial = state.clone();
        for (k, &i) in members.iter().enumerate() {
            trial.replace_path(i, strategies[i][choice[k]].clone());
        }
        let all_better = members
            .iter()
            .all(|&i| strictly_lt(player_cost(game, &trial, b, i), old_costs[i]));
        if all_better {
            return Some(CoalitionDeviation {
                members: members.to_vec(),
                paths: members
                    .iter()
                    .enumerate()
                    .map(|(k, &i)| strategies[i][choice[k]].clone())
                    .collect(),
                costs: members
                    .iter()
                    .map(|&i| (old_costs[i], player_cost(game, &trial, b, i)))
                    .collect(),
            });
        }
        // Advance the product counter.
        let mut k = 0;
        loop {
            if k == members.len() {
                return None;
            }
            choice[k] += 1;
            if choice[k] == sizes[k] {
                choice[k] = 0;
                k += 1;
            } else {
                break;
            }
        }
    }
}

/// Whether `state` is a `k`-strong equilibrium: no coalition of size ≤ `k`
/// has a deviation strictly improving every member.
pub fn is_strong_equilibrium(
    game: &NetworkDesignGame,
    state: &State,
    b: &SubsidyAssignment,
    k: usize,
) -> bool {
    find_coalition_deviation(game, state, b, k).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::is_equilibrium;
    use ndg_graph::generators;

    #[test]
    fn size_one_matches_unilateral_check() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(606);
        for _ in 0..10 {
            let n = rng.random_range(3..6usize);
            let g = generators::random_connected(n, 0.5, &mut rng, 0.3..3.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let tree = ndg_graph::kruskal(game.graph()).unwrap();
            let (state, _) = State::from_tree(&game, &tree).unwrap();
            let b = SubsidyAssignment::zero(game.graph());
            assert_eq!(
                is_strong_equilibrium(&game, &state, &b, 1),
                is_equilibrium(&game, &state, &b)
            );
        }
    }

    #[test]
    fn nash_but_not_strong() {
        // Two players, two parallel two-edge routes between their common
        // source region and the root: a classic coordination failure.
        // Root r = 0; both players at node 3. Wait — broadcast games need
        // distinct sources, so use a general game: players (3 → 0) twice
        // is disallowed; instead players at 3 and 4 joined to a common
        // hub 2:
        //   cheap route: 2-1-0 (two edges of weight 1 each)
        //   expensive route: 2-0 direct (weight 2.5)
        // If both route via the direct edge they pay 1.25 each; jointly
        // switching to 2-1-0 costs 1 each — a profitable 2-coalition, but
        // no unilateral move helps (alone on 2-1-0 costs 2).
        let mut g = ndg_graph::Graph::new(5);
        let e_direct = g.add_edge(NodeId(2), NodeId(0), 2.5).unwrap();
        let e21 = g.add_edge(NodeId(2), NodeId(1), 1.0).unwrap();
        let e10 = g.add_edge(NodeId(1), NodeId(0), 1.0).unwrap();
        let e32 = g.add_edge(NodeId(3), NodeId(2), 0.0).unwrap();
        let e42 = g.add_edge(NodeId(4), NodeId(2), 0.0).unwrap();
        let game = NetworkDesignGame::new(
            g,
            vec![
                crate::game::Player {
                    source: NodeId(3),
                    terminal: NodeId(0),
                },
                crate::game::Player {
                    source: NodeId(4),
                    terminal: NodeId(0),
                },
            ],
        )
        .unwrap();
        let state = State::new(&game, vec![vec![e32, e_direct], vec![e42, e_direct]]).unwrap();
        let b = SubsidyAssignment::zero(game.graph());
        // Unilaterally stable: alone on the cheap route costs 2 > 1.25.
        assert!(is_equilibrium(&game, &state, &b));
        assert!(is_strong_equilibrium(&game, &state, &b, 1));
        // But the pair deviates together.
        let dev = find_coalition_deviation(&game, &state, &b, 2).expect("pair deviation");
        assert_eq!(dev.members, vec![0, 1]);
        for &(old, new) in &dev.costs {
            assert!(new < old);
        }
        assert!(!is_strong_equilibrium(&game, &state, &b, 2));
        // The cheap-route profile is 2-strong.
        let good = State::new(&game, vec![vec![e32, e21, e10], vec![e42, e21, e10]]).unwrap();
        assert!(is_strong_equilibrium(&game, &good, &b, 2));
    }

    #[test]
    fn subsidies_restore_strong_stability() {
        // Same instance: subsidizing the direct edge down to 2.0 makes the
        // direct profile cost 1 each — no pair deviation remains... the
        // cheap route would still give 1 each (not strictly better), so
        // the direct profile becomes 2-strong.
        let mut g = ndg_graph::Graph::new(5);
        let e_direct = g.add_edge(NodeId(2), NodeId(0), 2.5).unwrap();
        let _e21 = g.add_edge(NodeId(2), NodeId(1), 1.0).unwrap();
        let _e10 = g.add_edge(NodeId(1), NodeId(0), 1.0).unwrap();
        let e32 = g.add_edge(NodeId(3), NodeId(2), 0.0).unwrap();
        let e42 = g.add_edge(NodeId(4), NodeId(2), 0.0).unwrap();
        let game = NetworkDesignGame::new(
            g,
            vec![
                crate::game::Player {
                    source: NodeId(3),
                    terminal: NodeId(0),
                },
                crate::game::Player {
                    source: NodeId(4),
                    terminal: NodeId(0),
                },
            ],
        )
        .unwrap();
        let state = State::new(&game, vec![vec![e32, e_direct], vec![e42, e_direct]]).unwrap();
        let mut b = SubsidyAssignment::zero(game.graph());
        b.set(game.graph(), e_direct, 0.5);
        assert!(is_strong_equilibrium(&game, &state, &b, 2));
    }

    #[test]
    fn all_simple_paths_counts() {
        let g = generators::cycle_graph(5, 1.0);
        // Exactly 2 simple paths between any two cycle nodes.
        assert_eq!(all_simple_paths(&g, NodeId(0), NodeId(2)).len(), 2);
        let k4 = generators::complete_graph(4, 1.0);
        // K4: paths 0→1: direct(1), via one intermediate (2), via two (2)
        // = 5.
        assert_eq!(all_simple_paths(&k4, NodeId(0), NodeId(1)).len(), 5);
    }
}
