//! `ndg-core` — the paper's model: fair-cost-sharing network design games.
//!
//! Implements Section 2 in full: games (general and broadcast), states with
//! usage counts, subsidy assignments and extension-game costs, exact Nash
//! verification (separation-oracle best responses), the broadcast Lemma 2
//! fast check, Rosenthal's potential, best-response dynamics, and exhaustive
//! spanning-tree enumeration with exact price of stability/anarchy on small
//! instances.

pub mod approx;
pub mod batch;
pub mod bounds;
pub mod broadcast;
pub mod coalition;
pub mod cost;
pub mod dynamics;
pub mod enumerate;
pub mod equilibrium;
pub mod game;
pub mod incremental;
pub mod multicast;
pub mod num;
pub mod potential;
pub mod recert;
pub mod state;
pub mod subsidy;
pub mod weighted;

pub use approx::{is_alpha_equilibrium, stability_threshold};
pub use batch::{BatchCertification, BatchCertifier};
pub use bounds::OptimisticBounds;
pub use broadcast::{
    is_tree_equilibrium, is_tree_equilibrium_eps, lemma2_violation, lemma2_violation_eps,
    lemma2_violation_eps_with, root_path_costs, Lemma2Violation, TreeView,
};
pub use coalition::{
    all_simple_paths, all_simple_paths_into, find_coalition_deviation, is_strong_equilibrium,
    CoalitionDeviation, PathScratch,
};
pub use cost::{deviation_cost, deviation_weight, player_cost, social_cost_subsidized};
pub use dynamics::{
    best_response_dynamics, best_response_dynamics_budgeted, best_response_dynamics_naive,
    dynamics_from_tree, DynamicsResult, MoveOrder,
};
pub use enumerate::{
    best_equilibrium_tree, best_equilibrium_tree_orbits, count_spanning_trees, equilibrium_trees,
    fold_equilibrium_trees, fold_equilibrium_trees_budgeted, fold_equilibrium_trees_orbits,
    fold_equilibrium_trees_orbits_budgeted, for_each_spanning_tree, for_each_spanning_tree_orbits,
    orbit_max_member, orbit_min_member, price_of_anarchy_trees, price_of_anarchy_trees_orbits,
    price_of_stability, price_of_stability_budgeted, price_of_stability_orbits,
    price_of_stability_orbits_budgeted, spanning_trees, EdgeGroup, EnumError, EquilibriumTree,
};
pub use equilibrium::{
    best_response, best_response_with, find_deviation, is_equilibrium, Deviation,
};
pub use game::{GameError, NetworkDesignGame, Player};
pub use incremental::{IncrementalDynamics, MoveRecord};
pub use multicast::{exact_steiner_tree, multicast};
pub use num::{approx_eq, approx_ge, approx_le, strictly_gt, strictly_lt, EPS};
pub use potential::{potential_sandwich, rosenthal_potential};
pub use recert::{CertifierStats, IncrementalCertifier};
pub use state::{State, StateError};
pub use subsidy::{SubsidyAssignment, SubsidyError};
pub use weighted::{
    weighted_best_response, weighted_deviation_cost, weighted_is_equilibrium, weighted_player_cost,
    Demands,
};
