//! Subsidy assignments (Section 2).
//!
//! A subsidy assignment `b` gives each edge `a` an amount `b_a ∈ [0, w_a]`;
//! its cost is `Σ_a b_a`. In the *all-or-nothing* (integral) variant of
//! Section 5, `b_a ∈ {0, w_a}`. The extension of a game with subsidies `b`
//! shares the *residual* weight `w_a − b_a` among an edge's users.

use crate::num::EPS;
use ndg_graph::{EdgeId, Graph};
use std::fmt;

/// Errors when building a subsidy assignment.
#[derive(Clone, Debug, PartialEq)]
pub enum SubsidyError {
    /// Vector length does not match the graph's edge count.
    LengthMismatch { got: usize, want: usize },
    /// `b_a` outside `[0, w_a]` (beyond tolerance) or not finite.
    OutOfRange { edge: EdgeId, b: f64, w: f64 },
    /// An edge relabeling handed to [`SubsidyAssignment::permuted`] was
    /// not a permutation (an out-of-range or repeated target id).
    NotAPermutation { edge: EdgeId },
}

impl fmt::Display for SubsidyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubsidyError::LengthMismatch { got, want } => {
                write!(f, "subsidy vector length {got}, expected {want}")
            }
            SubsidyError::OutOfRange { edge, b, w } => {
                write!(f, "subsidy {b} on edge {edge:?} outside [0, {w}]")
            }
            SubsidyError::NotAPermutation { edge } => {
                write!(f, "edge map target {edge:?} out of range or repeated")
            }
        }
    }
}

impl std::error::Error for SubsidyError {}

/// A subsidy assignment `b: E → [0, w]`, stored densely per edge.
#[derive(Clone, Debug, PartialEq)]
pub struct SubsidyAssignment {
    b: Vec<f64>,
}

impl SubsidyAssignment {
    /// The all-zero assignment (the original, unsubsidized game).
    pub fn zero(g: &Graph) -> Self {
        SubsidyAssignment {
            b: vec![0.0; g.edge_count()],
        }
    }

    /// Build from an explicit per-edge vector, validating bounds.
    /// Values within `EPS` of the bounds are clamped.
    pub fn new(g: &Graph, b: Vec<f64>) -> Result<Self, SubsidyError> {
        if b.len() != g.edge_count() {
            return Err(SubsidyError::LengthMismatch {
                got: b.len(),
                want: g.edge_count(),
            });
        }
        let mut clamped = b;
        for (i, v) in clamped.iter_mut().enumerate() {
            let e = EdgeId(i as u32);
            let w = g.weight(e);
            if !v.is_finite() || *v < -EPS || *v > w + EPS {
                return Err(SubsidyError::OutOfRange { edge: e, b: *v, w });
            }
            *v = v.clamp(0.0, w);
        }
        Ok(SubsidyAssignment { b: clamped })
    }

    /// All-or-nothing assignment fully subsidizing exactly the edges in
    /// `fully`.
    pub fn all_or_nothing(g: &Graph, fully: &[EdgeId]) -> Self {
        let mut b = vec![0.0; g.edge_count()];
        for &e in fully {
            b[e.index()] = g.weight(e);
        }
        SubsidyAssignment { b }
    }

    /// Subsidy on edge `e`.
    #[inline]
    pub fn get(&self, e: EdgeId) -> f64 {
        self.b[e.index()]
    }

    /// Set the subsidy on `e`, clamping into `[0, w_e]`.
    pub fn set(&mut self, g: &Graph, e: EdgeId, v: f64) {
        self.b[e.index()] = v.clamp(0.0, g.weight(e));
    }

    /// Residual weight `w_e − b_e` shared by the players of `e`.
    #[inline]
    pub fn residual(&self, g: &Graph, e: EdgeId) -> f64 {
        (g.weight(e) - self.b[e.index()]).max(0.0)
    }

    /// Total cost `b(E) = Σ_a b_a`.
    pub fn cost(&self) -> f64 {
        self.b.iter().sum()
    }

    /// `b(A)`: total subsidies on a given edge set.
    pub fn cost_on(&self, edges: &[EdgeId]) -> f64 {
        edges.iter().map(|&e| self.b[e.index()]).sum()
    }

    /// Whether every subsidy is 0 or the full edge weight (within `EPS`).
    pub fn is_all_or_nothing(&self, g: &Graph) -> bool {
        self.b.iter().enumerate().all(|(i, &v)| {
            let w = g.weight(EdgeId(i as u32));
            v.abs() <= EPS || (v - w).abs() <= EPS
        })
    }

    /// The edges with any positive subsidy.
    pub fn support(&self) -> Vec<EdgeId> {
        let mut out = Vec::new();
        self.support_into(&mut out);
        out
    }

    /// [`support`](Self::support) into a caller-provided scratch buffer
    /// (cleared first), so loops that re-query the support after each
    /// mutation reuse one allocation — the same contract as
    /// `DijkstraWorkspace`.
    pub fn support_into(&self, out: &mut Vec<EdgeId>) {
        out.clear();
        out.extend(
            self.b
                .iter()
                .enumerate()
                .filter(|(_, &v)| v > EPS)
                .map(|(i, _)| EdgeId(i as u32)),
        );
    }

    /// Pointwise sum of two assignments on the same graph, clamped into
    /// bounds (used by Theorem 6 to combine per-layer subsidies).
    pub fn add(&self, g: &Graph, other: &SubsidyAssignment) -> SubsidyAssignment {
        let b = self
            .b
            .iter()
            .zip(&other.b)
            .enumerate()
            .map(|(i, (x, y))| (x + y).clamp(0.0, g.weight(EdgeId(i as u32))))
            .collect();
        SubsidyAssignment { b }
    }

    /// The raw per-edge vector.
    pub fn as_slice(&self) -> &[f64] {
        &self.b
    }

    /// Reindex through an edge relabeling: entry `edge_map[e]` of the
    /// result carries this assignment's subsidy on `e` (floats are moved,
    /// never recomputed, so the mapping is bit-exact). `edge_map` must be
    /// a permutation of `target`'s edge ids; the result is re-validated
    /// against `target`'s weights.
    pub fn permuted(
        &self,
        target: &Graph,
        edge_map: &[EdgeId],
    ) -> Result<SubsidyAssignment, SubsidyError> {
        if edge_map.len() != self.b.len() || target.edge_count() != self.b.len() {
            return Err(SubsidyError::LengthMismatch {
                got: edge_map.len(),
                want: target.edge_count(),
            });
        }
        let mut b = vec![None; target.edge_count()];
        for (old, &new) in edge_map.iter().enumerate() {
            match b.get_mut(new.index()) {
                Some(slot @ None) => *slot = Some(self.b[old]),
                // Out of range, or a repeated target (which would
                // silently drop one subsidy and zero another edge).
                _ => return Err(SubsidyError::NotAPermutation { edge: new }),
            }
        }
        let b = b
            .into_iter()
            .map(|x| x.expect("equal-length injective map is a permutation"))
            .collect();
        SubsidyAssignment::new(target, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndg_graph::generators;
    use ndg_graph::NodeId;

    #[test]
    fn zero_assignment() {
        let g = generators::cycle_graph(4, 2.0);
        let b = SubsidyAssignment::zero(&g);
        assert_eq!(b.cost(), 0.0);
        assert_eq!(b.residual(&g, EdgeId(0)), 2.0);
        assert!(b.is_all_or_nothing(&g));
        assert!(b.support().is_empty());
    }

    #[test]
    fn validation() {
        let g = generators::path_graph(3, 1.0);
        assert!(matches!(
            SubsidyAssignment::new(&g, vec![0.5]),
            Err(SubsidyError::LengthMismatch { .. })
        ));
        assert!(matches!(
            SubsidyAssignment::new(&g, vec![0.5, 1.5]),
            Err(SubsidyError::OutOfRange { .. })
        ));
        assert!(matches!(
            SubsidyAssignment::new(&g, vec![-0.5, 0.0]),
            Err(SubsidyError::OutOfRange { .. })
        ));
        let ok = SubsidyAssignment::new(&g, vec![0.5, 1.0]).unwrap();
        assert_eq!(ok.cost(), 1.5);
        assert!(!ok.is_all_or_nothing(&g));
    }

    #[test]
    fn near_bound_values_clamped() {
        let g = generators::path_graph(2, 1.0);
        let b = SubsidyAssignment::new(&g, vec![1.0 + EPS / 2.0]).unwrap();
        assert_eq!(b.get(EdgeId(0)), 1.0);
        let b2 = SubsidyAssignment::new(&g, vec![-EPS / 2.0]).unwrap();
        assert_eq!(b2.get(EdgeId(0)), 0.0);
    }

    #[test]
    fn all_or_nothing_constructor() {
        let g = generators::cycle_graph(4, 3.0);
        let b = SubsidyAssignment::all_or_nothing(&g, &[EdgeId(1), EdgeId(3)]);
        assert!(b.is_all_or_nothing(&g));
        assert_eq!(b.cost(), 6.0);
        assert_eq!(b.get(EdgeId(0)), 0.0);
        assert_eq!(b.get(EdgeId(1)), 3.0);
        assert_eq!(b.support(), vec![EdgeId(1), EdgeId(3)]);
        assert_eq!(b.cost_on(&[EdgeId(0), EdgeId(1)]), 3.0);
    }

    #[test]
    fn set_clamps_and_add_combines() {
        let mut g = ndg_graph::Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1), 2.0).unwrap();
        let mut b = SubsidyAssignment::zero(&g);
        b.set(&g, EdgeId(0), 5.0);
        assert_eq!(b.get(EdgeId(0)), 2.0);
        b.set(&g, EdgeId(0), -1.0);
        assert_eq!(b.get(EdgeId(0)), 0.0);

        let mut x = SubsidyAssignment::zero(&g);
        let mut y = SubsidyAssignment::zero(&g);
        x.set(&g, EdgeId(0), 1.5);
        y.set(&g, EdgeId(0), 1.0);
        let sum = x.add(&g, &y);
        assert_eq!(sum.get(EdgeId(0)), 2.0); // clamped at the weight
        assert_eq!(sum.residual(&g, EdgeId(0)), 0.0);
    }
}
