//! Fair (Shapley) cost sharing.
//!
//! In state `T` with subsidies `b`, player `i` pays
//! `costᵢ(T; b) = Σ_{a∈Tᵢ} (w_a − b_a)/n_a(T)`; when she deviates to a path
//! `Tᵢ'` the denominator becomes `n_a(T) + 1 − n_a^i(T)` — the number of
//! users of `a` in the state `(T₋ᵢ, Tᵢ')` (Section 2 and LP (1)).

use crate::game::NetworkDesignGame;
use crate::state::State;
use crate::subsidy::SubsidyAssignment;
use ndg_graph::EdgeId;

/// Cost of player `i` in state `state` of the extension with subsidies `b`.
pub fn player_cost(
    game: &NetworkDesignGame,
    state: &State,
    b: &SubsidyAssignment,
    i: usize,
) -> f64 {
    let g = game.graph();
    state
        .path(i)
        .iter()
        .map(|&e| b.residual(g, e) / state.usage(e) as f64)
        .sum()
}

/// The share player `i` would pay on edge `e` after a unilateral
/// deviation onto it: `(w_e − b_e)/(n_e(T) + 1 − n_e^i(T))`.
///
/// This is *the* deviation-weight expression — the Dijkstra/A* weight
/// functions and [`deviation_cost`] all route through it, so every layer
/// of the engine evaluates bit-identical floats.
#[inline]
pub fn deviation_weight(
    game: &NetworkDesignGame,
    state: &State,
    b: &SubsidyAssignment,
    i: usize,
    e: EdgeId,
) -> f64 {
    let denom = state.usage(e) + 1 - u32::from(state.uses(i, e));
    b.residual(game.graph(), e) / denom as f64
}

/// Cost player `i` would pay after unilaterally deviating to `alt_path`
/// (denominators `n_a(T) + 1 − n_a^i(T)`).
pub fn deviation_cost(
    game: &NetworkDesignGame,
    state: &State,
    b: &SubsidyAssignment,
    i: usize,
    alt_path: &[EdgeId],
) -> f64 {
    alt_path
        .iter()
        .map(|&e| deviation_weight(game, state, b, i, e))
        .sum()
}

/// Social cost of the extension: total residual weight of established edges
/// (equals `Σᵢ costᵢ(T; b)`).
pub fn social_cost_subsidized(
    game: &NetworkDesignGame,
    state: &State,
    b: &SubsidyAssignment,
) -> f64 {
    let g = game.graph();
    state
        .established_edges()
        .iter()
        .map(|&e| b.residual(g, e))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::NetworkDesignGame;
    use ndg_graph::{generators, NodeId};

    fn path_game(n: usize, w: f64) -> NetworkDesignGame {
        NetworkDesignGame::broadcast(generators::path_graph(n, w), NodeId(0)).unwrap()
    }

    #[test]
    fn shared_costs_on_a_path() {
        // Path 0-1-2-3, root 0: edge usage 3,2,1; unit weights.
        let game = path_game(4, 1.0);
        let tree: Vec<EdgeId> = game.graph().edge_ids().collect();
        let (state, _) = State::from_tree(&game, &tree).unwrap();
        let b = SubsidyAssignment::zero(game.graph());
        // Player of node 1 pays 1/3; node 2 pays 1/3 + 1/2; node 3 pays
        // 1/3 + 1/2 + 1.
        let c0 = player_cost(&game, &state, &b, 0);
        let c1 = player_cost(&game, &state, &b, 1);
        let c2 = player_cost(&game, &state, &b, 2);
        assert!((c0 - 1.0 / 3.0).abs() < 1e-12);
        assert!((c1 - (1.0 / 3.0 + 0.5)).abs() < 1e-12);
        assert!((c2 - (1.0 / 3.0 + 0.5 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn subsidies_reduce_cost() {
        let game = path_game(3, 2.0);
        let tree: Vec<EdgeId> = game.graph().edge_ids().collect();
        let (state, _) = State::from_tree(&game, &tree).unwrap();
        let mut b = SubsidyAssignment::zero(game.graph());
        b.set(game.graph(), EdgeId(0), 1.0); // halve the first edge
                                             // Player of node 1: (2−1)/2 = 0.5 instead of 1.
        assert!((player_cost(&game, &state, &b, 0) - 0.5).abs() < 1e-12);
        // Social cost under subsidies: (2−1) + 2 = 3.
        assert!((social_cost_subsidized(&game, &state, &b) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn deviation_denominators() {
        // Cycle of 4 nodes, root 0, tree = path 0-1-2-3.
        let g = generators::cycle_graph(4, 1.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let tree: Vec<EdgeId> = (0..3).map(EdgeId).collect();
        let (state, _) = State::from_tree(&game, &tree).unwrap();
        let b = SubsidyAssignment::zero(game.graph());
        // Player of node 3 (index 2) deviates to the closing edge e3:
        // unused edge, denominator 1 ⇒ cost 1.
        let dev = deviation_cost(&game, &state, &b, 2, &[EdgeId(3)]);
        assert!((dev - 1.0).abs() < 1e-12);
        // Player of node 1 (index 0) deviates to [e3, e2, e1]:
        // e3 unused → 1; e2 used by player 2 (not by her) → 1/2;
        // e1 used by players 1,2 (not her) → 1/3.
        let dev0 = deviation_cost(&game, &state, &b, 0, &[EdgeId(1), EdgeId(2), EdgeId(3)]);
        assert!((dev0 - (1.0 / 3.0 + 0.5 + 1.0)).abs() < 1e-12);
        // Deviating to her own current path must reproduce her cost
        // (n + 1 − 1 = n on every edge she already uses).
        let stay = deviation_cost(&game, &state, &b, 0, &[EdgeId(0)]);
        assert!((stay - player_cost(&game, &state, &b, 0)).abs() < 1e-12);
    }

    #[test]
    fn fully_subsidized_edges_cost_nothing() {
        let game = path_game(3, 5.0);
        let tree: Vec<EdgeId> = game.graph().edge_ids().collect();
        let (state, _) = State::from_tree(&game, &tree).unwrap();
        let b = SubsidyAssignment::all_or_nothing(game.graph(), &tree);
        for i in 0..game.num_players() {
            assert_eq!(player_cost(&game, &state, &b, i), 0.0);
        }
        assert_eq!(social_cost_subsidized(&game, &state, &b), 0.0);
    }
}
