//! Incremental Lemma-2 maintenance across working rounds: O(Δ)
//! re-certification for round-robin dynamics.
//!
//! The batched sweep in [`crate::batch`] certifies *one* tree-induced
//! state in `O(m · depth)`, but a working round of round-robin dynamics
//! mutates the state after every mover, so the sweep used to pay off only
//! in the final (certifying) round — every earlier "is anything left to
//! do?" question fell back to per-player corridor probes, and those
//! probes dominated the round-robin wall clock (ROADMAP, PR 2
//! measurement).
//!
//! This module maintains the tree-induced view *across* moves instead of
//! re-deriving it. The observation is that almost every improving move in
//! broadcast dynamics is an **elementary swap** at the level of the
//! established edge set: the mover is a leaf of the current tree, her old
//! path's only sole-user edge is her parent edge, and her best response
//! rides one new edge onto established tree paths. Such a move changes
//! the spanning tree by exactly one edge exchange, so the certifier
//! updates in `O(Δ)`:
//!
//! * **subtree sizes** change by ±1 exactly on the two root paths of the
//!   detach/attach points (they cancel above the LCA);
//! * **root-path costs** change only below the topmost edges whose fair
//!   share changed — the affected subtrees hanging off the LCA — and are
//!   *recomputed* (not delta-adjusted) top-down with the same per-node
//!   expression as [`crate::broadcast::root_path_costs`], which keeps
//!   every maintained cost bit-identical to a from-scratch rebuild;
//! * **Lemma-2 verdicts** carry over for every player whose constraint
//!   inputs did not change. Staleness is tracked by version stamps: a
//!   move stamps only the `O(Δ)` nodes whose cost/position/constraint
//!   set changed, and a stored verdict is *fresh* iff it postdates the
//!   stamps of its owner and of her non-tree neighbors (the affected
//!   region is downward-closed, so LCA-and-climb dependencies reduce to
//!   endpoint membership). Stale margins are re-evaluated lazily, in
//!   `O(deg · depth)` per player, when next consulted.
//!
//! A non-elementary move (a non-leaf mover strands her subtree on the old
//! edge, so the established set stops being a tree) simply invalidates
//! the view; [`crate::incremental::IncrementalDynamics`] re-adopts the
//! live state at most once per move once the established edges form a
//! spanning tree again. Re-adoption stamps every player stale rather than
//! sweeping eagerly, so its cost is spread over the next queries.
//!
//! **What the margins soundly certify.** Lemma 2 is a *global*
//! equilibrium criterion: "no ordered non-tree adjacency constraint is
//! violated" ⇔ "no player can strictly improve". It is **not** a
//! per-player criterion — a player with clean incident margins can still
//! improve through a route that enters the tree via *another* node's
//! non-tree adjacency (multi-pivot or descend-first deviations), so
//! skipping an individual player's probe on her own margins would change
//! dynamics decisions. The engine therefore consumes the maintained view
//! only through the global answers: [`IncrementalCertifier::equilibrium`]
//! ("is anything left to do at all?", the answer that turns every
//! post-convergence turn into an O(1) decline) and
//! [`IncrementalCertifier::certify`] (the full witness, replacing the
//! from-scratch final sweep).
//!
//! **Exactness.** All maintained quantities are bit-identical to what the
//! scratch path ([`crate::batch::BatchCertifier`] over a fresh
//! [`ndg_graph::RootedTree`]) computes for the same state: costs by the
//! recompute-don't-adjust rule above, right-hand sides because both paths
//! share [`crate::broadcast::deviation_rhs_on`], and the global witness
//! because [`IncrementalCertifier::certify`] resolves ties by the sweep's
//! (edge id, orientation) order. The property tests at the bottom assert
//! witness equality *to the bit* after random move sequences. The
//! per-constraint-vs-per-best-response tolerance caveat documented in
//! [`crate::batch`] applies unchanged.

use crate::batch::BatchCertification;
use crate::broadcast::{deviation_rhs_on, Lemma2Violation, TreeView};
use crate::game::NetworkDesignGame;
use crate::state::State;
use crate::subsidy::SubsidyAssignment;
use ndg_graph::{EdgeId, NodeId};

/// Profiling counters (no-ops until `ndg_obs::install`): per-player
/// margin queries answered from a still-fresh stored verdict vs forced
/// to recompute from the maintained view.
static RECERT_FRESH_VERDICTS: ndg_obs::Counter = ndg_obs::Counter::new("recert_fresh_total");
static RECERT_STALE_VERDICTS: ndg_obs::Counter = ndg_obs::Counter::new("recert_stale_total");

/// A stored per-player margin evaluation (validity tracked separately by
/// version stamps).
#[derive(Clone, Copy, Debug, PartialEq)]
enum Verdict {
    /// No incident Lemma-2 constraint was violated.
    Ok,
    /// The lowest-edge-id violated constraint with this node as deviator.
    Violated {
        via: EdgeId,
        to: NodeId,
        lhs: f64,
        rhs: f64,
    },
}

/// Counters describing how the maintained view earned its keep (exposed
/// through [`crate::incremental::IncrementalDynamics::certifier_stats`]
/// and printed by `exp_e13`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CertifierStats {
    /// Full adoptions of a live state (each stamps all players stale).
    pub adoptions: u64,
    /// Moves absorbed as O(Δ) elementary swaps.
    pub elementary_updates: u64,
    /// Moves that invalidated the view (non-elementary).
    pub invalidations: u64,
    /// Lazy per-player margin evaluations.
    pub margin_recomputes: u64,
}

/// Persistent rooted-tree state + per-player Lemma-2 margins, maintained
/// in O(Δ) under elementary strategy swaps.
#[derive(Debug)]
pub struct IncrementalCertifier {
    valid: bool,
    root: NodeId,
    /// Monotonic state version: bumped by every adoption and every
    /// absorbed move (never reset, so stamps survive re-adoption).
    version: u64,
    /// `parent[v]` = (parent node, connecting edge); `None` for the root.
    parent: Vec<Option<(NodeId, EdgeId)>>,
    /// Depth (edge count to root).
    depth: Vec<u32>,
    /// `subtree[v]` = nodes in the subtree below `v` (incl. `v`) —
    /// exactly the usage count of `v`'s parent edge on tree-induced
    /// states.
    subtree: Vec<u32>,
    /// Children lists (order immaterial; used for affected-subtree DFS).
    children: Vec<Vec<NodeId>>,
    /// `cost[v]` = `cost_v(T; b)`, bit-identical to
    /// [`crate::broadcast::root_path_costs`] on the same tree.
    cost: Vec<f64>,
    /// Per-edge tree membership.
    in_tree: Vec<bool>,
    /// Last stored margin evaluation per node (root slot unused).
    verdict: Vec<Verdict>,
    /// Version at which `verdict[v]` was evaluated (0 = never).
    verdict_v: Vec<u64>,
    /// Version at which `v`'s cost/position/constraint set last changed.
    touched: Vec<u64>,
    /// Nodes whose margin recently evaluated to `Violated` (ring of the
    /// last few). A post-move boolean query rechecks these first: the
    /// players that went stale but are still violated settle the query in
    /// one or two margin evaluations instead of a scan.
    recent_violators: Vec<NodeId>,
    /// DFS scratch for affected-subtree recomputation.
    dfs: Vec<NodeId>,
    stats: CertifierStats,
}

impl TreeView for IncrementalCertifier {
    fn root(&self) -> NodeId {
        self.root
    }
    fn parent(&self, v: NodeId) -> Option<(NodeId, EdgeId)> {
        self.parent[v.index()]
    }
    fn subtree_size(&self, v: NodeId) -> u32 {
        self.subtree[v.index()]
    }
    fn lca(&self, u: NodeId, v: NodeId) -> NodeId {
        let (mut a, mut b) = (u, v);
        while self.depth[a.index()] > self.depth[b.index()] {
            a = self.parent[a.index()].expect("deeper node has a parent").0;
        }
        while self.depth[b.index()] > self.depth[a.index()] {
            b = self.parent[b.index()].expect("deeper node has a parent").0;
        }
        while a != b {
            a = self.parent[a.index()].expect("distinct nodes below root").0;
            b = self.parent[b.index()].expect("distinct nodes below root").0;
        }
        a
    }
}

impl Default for IncrementalCertifier {
    fn default() -> Self {
        Self::new()
    }
}

impl IncrementalCertifier {
    /// An empty, invalid certifier (adopt a state to activate it).
    pub fn new() -> Self {
        IncrementalCertifier {
            valid: false,
            root: NodeId(0),
            version: 0,
            parent: Vec::new(),
            depth: Vec::new(),
            subtree: Vec::new(),
            children: Vec::new(),
            cost: Vec::new(),
            in_tree: Vec::new(),
            verdict: Vec::new(),
            verdict_v: Vec::new(),
            touched: Vec::new(),
            recent_violators: Vec::new(),
            dfs: Vec::new(),
            stats: CertifierStats::default(),
        }
    }

    /// Whether the maintained view currently matches a live tree-induced
    /// state.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// Counters since construction.
    #[inline]
    pub fn stats(&self) -> CertifierStats {
        self.stats
    }

    /// Drop the maintained view (the next certification needs
    /// [`adopt`](Self::adopt)).
    pub fn invalidate(&mut self) {
        if self.valid {
            self.valid = false;
            self.stats.invalidations += 1;
            if ndg_obs::events::recording() {
                ndg_obs::events::emit("recert", vec![("op", "invalidate".to_string())]);
            }
        }
    }

    /// Adopt `state` as the maintained view if it is tree-induced (its
    /// established edges form a spanning tree — for a broadcast game that
    /// pins every player to her unique tree path). All players start
    /// stale: margins are evaluated lazily on first query, so adoption
    /// costs `O(n + m)` and the sweep-equivalent work is spread over the
    /// queries that actually happen. Returns the resulting validity.
    pub fn adopt(
        &mut self,
        game: &NetworkDesignGame,
        state: &State,
        b: &SubsidyAssignment,
    ) -> bool {
        self.valid = false;
        if !game.is_broadcast() {
            return false;
        }
        let Some(root) = game.root() else {
            return false;
        };
        let g = game.graph();
        let n = g.node_count();
        let mut established = 0usize;
        for e in g.edge_ids() {
            if state.usage(e) > 0 {
                established += 1;
                if established >= n {
                    return false; // more edges than any spanning tree has
                }
            }
        }
        if established + 1 != n {
            return false;
        }
        self.root = root;
        self.version += 1;
        self.parent.clear();
        self.parent.resize(n, None);
        self.depth.clear();
        self.depth.resize(n, 0);
        self.subtree.clear();
        self.subtree.resize(n, 1);
        self.in_tree.clear();
        self.in_tree.resize(g.edge_count(), false);
        self.verdict.clear();
        self.verdict.resize(n, Verdict::Ok);
        self.verdict_v.clear();
        self.verdict_v.resize(n, 0); // 0 < version: everyone stale
        self.touched.clear();
        self.touched.resize(n, self.version);
        self.recent_violators.clear();
        self.cost.clear();
        self.cost.resize(n, 0.0);
        if self.children.len() < n {
            self.children.resize(n, Vec::new());
        }
        for kids in &mut self.children {
            kids.clear();
        }
        // DFS from the root over established edges; n−1 established edges
        // reaching all n nodes ⇔ spanning tree (no union-find needed).
        let mut order = Vec::with_capacity(n);
        self.dfs.clear();
        self.dfs.push(root);
        let mut seen = vec![false; n];
        seen[root.index()] = true;
        while let Some(u) = self.dfs.pop() {
            order.push(u);
            for &(v, e) in g.neighbors(u) {
                if state.usage(e) > 0 && !seen[v.index()] {
                    seen[v.index()] = true;
                    self.parent[v.index()] = Some((u, e));
                    self.depth[v.index()] = self.depth[u.index()] + 1;
                    self.in_tree[e.index()] = true;
                    self.children[u.index()].push(v);
                    self.dfs.push(v);
                }
            }
        }
        if order.len() != n {
            return false; // established edges do not span (some cycle)
        }
        // Subtree sizes in reverse preorder, then costs in preorder —
        // the same per-node expression as `root_path_costs`.
        for &v in order.iter().rev() {
            if let Some((p, _)) = self.parent[v.index()] {
                self.subtree[p.index()] += self.subtree[v.index()];
            }
        }
        for &v in &order {
            if let Some((p, e)) = self.parent[v.index()] {
                self.cost[v.index()] =
                    self.cost[p.index()] + b.residual(g, e) / self.subtree[v.index()] as f64;
            }
        }
        self.stats.adoptions += 1;
        self.valid = true;
        if ndg_obs::events::recording() {
            ndg_obs::events::emit("recert", vec![("op", "adopt".to_string())]);
        }
        true
    }

    /// Re-adopt after the *instance itself* changed (a serving-layer
    /// delta patched a weight, failed an edge, or admitted a player):
    /// every cached structural fact — tree shape, margins, bounds — may
    /// be stale, so the old view is discarded wholesale and `state` is
    /// adopted against the patched `game`/`b` from scratch. Equivalent
    /// to [`invalidate`](Self::invalidate) + [`adopt`](Self::adopt), and
    /// the counters record both halves; returns the resulting validity.
    pub fn readopt(
        &mut self,
        game: &NetworkDesignGame,
        state: &State,
        b: &SubsidyAssignment,
    ) -> bool {
        self.invalidate();
        self.adopt(game, state, b)
    }

    /// Absorb one applied strategy change. `dropped`/`added` are the
    /// edges that left/entered the *established* set (usage `1 → 0` and
    /// `0 → 1`), as tracked by the engine's own O(Δ) bookkeeping. An
    /// elementary swap (leaf mover exchanging her parent edge for one new
    /// edge) is applied in O(Δ); anything else invalidates the view.
    pub fn on_move(
        &mut self,
        game: &NetworkDesignGame,
        state: &State,
        b: &SubsidyAssignment,
        mover: NodeId,
        dropped: &[EdgeId],
        added: &[EdgeId],
    ) {
        if !self.valid {
            return;
        }
        let g = game.graph();
        let elementary = dropped.len() == 1
            && added.len() == 1
            && self.subtree[mover.index()] == 1
            && self.parent[mover.index()].map(|(_, e)| e) == Some(dropped[0])
            && {
                let (x, y) = g.endpoints(added[0]);
                x == mover || y == mover
            };
        if !elementary {
            self.invalidate();
            return;
        }
        let e_old = dropped[0];
        let e_new = added[0];
        let (x, y) = g.endpoints(e_new);
        let new_parent = if x == mover { y } else { x };
        let old_parent = self.parent[mover.index()]
            .expect("leaf mover has a parent")
            .0;
        self.version += 1;
        self.stats.elementary_updates += 1;

        // 1. Subtree/usage deltas: −1 along old_parent→root, +1 along
        //    new_parent→root (they cancel above the LCA). Walked before
        //    the splice, but the splice only re-parents the leaf mover,
        //    which lies on neither walk.
        let mut cur = old_parent;
        loop {
            self.subtree[cur.index()] -= 1;
            match self.parent[cur.index()] {
                Some((p, _)) => cur = p,
                None => break,
            }
        }
        let mut cur = new_parent;
        loop {
            self.subtree[cur.index()] += 1;
            match self.parent[cur.index()] {
                Some((p, _)) => cur = p,
                None => break,
            }
        }

        // 2. Splice the leaf under its new parent.
        self.in_tree[e_old.index()] = false;
        self.in_tree[e_new.index()] = true;
        let kids = &mut self.children[old_parent.index()];
        let pos = kids
            .iter()
            .position(|&c| c == mover)
            .expect("children lists track parents");
        kids.swap_remove(pos);
        self.children[new_parent.index()].push(mover);
        self.parent[mover.index()] = Some((new_parent, e_new));
        self.depth[mover.index()] = self.depth[new_parent.index()] + 1;

        // 3. Fair shares changed exactly on the parent edges of the ±1
        //    nodes (and on the swapped pair), so root-path costs change
        //    exactly in the subtrees hanging below the LCA on each side.
        //    Recompute those top-down, stamping the region as touched —
        //    verdict staleness is resolved lazily at query time.
        let l = self.lca(old_parent, new_parent);
        if let Some(top) = self.side_top(old_parent, l) {
            self.recompute_region(g, b, top);
        }
        match self.side_top(new_parent, l) {
            // The mover rides inside the new-parent side's region.
            Some(top) => self.recompute_region(g, b, top),
            // Re-attached directly under the LCA: only her own cost
            // (via the brand-new parent edge) changes on this side.
            None => self.recompute_region(g, b, mover),
        }

        // 4. The constraint *sets* of the swapped edges' endpoints
        //    changed (e_old gained a Lemma-2 constraint, e_new lost one)
        //    even when an endpoint sits at the LCA outside the region.
        self.touched[mover.index()] = self.version;
        self.touched[old_parent.index()] = self.version;
        self.touched[new_parent.index()] = self.version;

        debug_assert!(
            g.edge_ids().all(|e| {
                !self.in_tree[e.index()] || {
                    let (a, bb) = g.endpoints(e);
                    let child = if self.parent[a.index()].map(|(_, pe)| pe) == Some(e) {
                        a
                    } else {
                        bb
                    };
                    state.usage(e) == self.subtree[child.index()]
                }
            }),
            "maintained subtree sizes drifted from live usage counts"
        );
    }

    /// The child-of-`l` ancestor of `from` (the top of that side's
    /// affected subtree), or `None` when `from == l`.
    fn side_top(&self, from: NodeId, l: NodeId) -> Option<NodeId> {
        if from == l {
            return None;
        }
        let mut cur = from;
        loop {
            let (p, _) = self.parent[cur.index()].expect("l is an ancestor");
            if p == l {
                return Some(cur);
            }
            cur = p;
        }
    }

    /// Recompute `cost` for the whole subtree below `top` (top-down, the
    /// `root_path_costs` expression) and stamp the region touched. The
    /// region is downward-closed, which is what lets verdict freshness
    /// reduce to "my stamp and my non-tree neighbors' stamps predate my
    /// evaluation".
    fn recompute_region(&mut self, g: &ndg_graph::Graph, b: &SubsidyAssignment, top: NodeId) {
        self.dfs.clear();
        self.dfs.push(top);
        while let Some(u) = self.dfs.pop() {
            let (p, pe) = self.parent[u.index()].expect("region tops hang below the lca");
            self.cost[u.index()] =
                self.cost[p.index()] + b.residual(g, pe) / self.subtree[u.index()] as f64;
            self.touched[u.index()] = self.version;
            for ci in 0..self.children[u.index()].len() {
                let c = self.children[u.index()][ci];
                self.dfs.push(c);
            }
        }
    }

    /// Whether `v`'s stored verdict is still current: evaluated no
    /// earlier than the last touch of `v` itself and of every non-tree
    /// neighbor (all other constraint inputs — LCA costs, climb subtree
    /// sizes — are covered by those stamps because the touched region is
    /// downward-closed).
    fn is_fresh(&self, g: &ndg_graph::Graph, v: NodeId) -> bool {
        let vv = self.verdict_v[v.index()];
        if vv < self.touched[v.index()] {
            return false;
        }
        g.neighbors(v)
            .iter()
            .all(|&(w, e)| self.in_tree[e.index()] || vv >= self.touched[w.index()])
    }

    /// Ensure `v`'s margin is freshly evaluated.
    fn ensure_margin(&mut self, game: &NetworkDesignGame, b: &SubsidyAssignment, v: NodeId) {
        if self.is_fresh(game.graph(), v) {
            RECERT_FRESH_VERDICTS.inc();
        } else {
            RECERT_STALE_VERDICTS.inc();
            self.recompute_margin(game, b, v);
        }
    }

    /// Evaluate `u`'s Lemma-2 margin from the maintained view: scan her
    /// incident non-tree edges in edge-id order (adjacency lists are
    /// built in insertion order, which *is* edge-id order) and record the
    /// first violated constraint, exactly like the batch sweep's
    /// per-edge check.
    fn recompute_margin(&mut self, game: &NetworkDesignGame, b: &SubsidyAssignment, u: NodeId) {
        debug_assert!(u != self.root, "the root is not a player");
        self.stats.margin_recomputes += 1;
        let g = game.graph();
        let lhs = self.cost[u.index()];
        let mut found = Verdict::Ok;
        for &(w, e) in g.neighbors(u) {
            if self.in_tree[e.index()] {
                continue;
            }
            // Exact O(1) prefilter: every rhs term is non-negative, so
            // `rhs ≥ residual(e)` — when even that floor clears the lhs,
            // the constraint cannot be violated and the LCA/climb work is
            // skipped. (Exact, so recorded witnesses are unaffected.)
            if lhs <= b.residual(g, e) + crate::num::EPS {
                continue;
            }
            let rhs = deviation_rhs_on(game, self, b, &self.cost, u, w, e);
            if lhs > rhs + crate::num::EPS {
                found = Verdict::Violated {
                    via: e,
                    to: w,
                    lhs,
                    rhs,
                };
                break;
            }
        }
        if matches!(found, Verdict::Violated { .. }) && !self.recent_violators.contains(&u) {
            if self.recent_violators.len() >= 8 {
                self.recent_violators.remove(0);
            }
            self.recent_violators.push(u);
        }
        self.verdict[u.index()] = found;
        self.verdict_v[u.index()] = self.version;
    }

    /// Boolean equilibrium query for the maintained view: `None` when the
    /// view is invalid, `Some(false)` as soon as one violated constraint
    /// is found, `Some(true)` after every margin is confirmed clean.
    /// Recently-violated players are rechecked first — mid-dynamics they
    /// usually settle the query after one or two margin evaluations, so
    /// the only query that pays sweep-equivalent work is the final,
    /// certifying one.
    pub fn equilibrium(&mut self, game: &NetworkDesignGame, b: &SubsidyAssignment) -> Option<bool> {
        if !self.valid {
            return None;
        }
        for ri in (0..self.recent_violators.len()).rev() {
            let v = self.recent_violators[ri];
            self.ensure_margin(game, b, v);
            if matches!(self.verdict[v.index()], Verdict::Violated { .. }) {
                return Some(false);
            }
            self.recent_violators.swap_remove(ri);
        }
        let g = game.graph();
        for v in g.nodes() {
            if v == self.root {
                continue;
            }
            self.ensure_margin(game, b, v);
            if matches!(self.verdict[v.index()], Verdict::Violated { .. }) {
                return Some(false);
            }
        }
        Some(true)
    }

    /// Full certification from the maintained view (`NotApplicable` when
    /// invalid — this method never adopts; the engine controls adoption).
    /// The returned witness is bit-identical to the scratch sweep's
    /// ([`crate::batch::BatchCertifier`]): the lowest-edge-id violation,
    /// orientation `(u, v)` before `(v, u)`.
    pub fn certify(
        &mut self,
        game: &NetworkDesignGame,
        b: &SubsidyAssignment,
    ) -> BatchCertification {
        if !self.valid {
            return BatchCertification::NotApplicable;
        }
        let g = game.graph();
        let mut best: Option<(u32, u8, Lemma2Violation)> = None;
        for v in g.nodes() {
            if v == self.root {
                continue;
            }
            self.ensure_margin(game, b, v);
            if let Verdict::Violated { via, to, lhs, rhs } = self.verdict[v.index()] {
                let orientation = u8::from(g.endpoints(via).0 != v);
                let key = (via.0, orientation);
                if best.as_ref().is_none_or(|(bv, bo, _)| key < (*bv, *bo)) {
                    best = Some((
                        via.0,
                        orientation,
                        Lemma2Violation {
                            node: v,
                            via,
                            to,
                            lhs,
                            rhs,
                        },
                    ));
                }
            }
        }
        match best {
            Some((_, _, v)) => BatchCertification::Violation(v),
            None => BatchCertification::Equilibrium,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchCertifier;
    use crate::equilibrium::find_deviation;
    use crate::incremental::IncrementalDynamics;
    use ndg_graph::{generators, NodeId};
    use rand::prelude::*;

    fn random_tree(g: &ndg_graph::Graph, rng: &mut StdRng) -> Vec<EdgeId> {
        let mut order: Vec<EdgeId> = g.edge_ids().collect();
        order.shuffle(rng);
        let mut uf = ndg_graph::UnionFind::new(g.node_count());
        let mut tree = Vec::with_capacity(g.node_count() - 1);
        for e in order {
            let (u, v) = g.endpoints(e);
            if uf.union(u.index(), v.index()) {
                tree.push(e);
            }
        }
        tree.sort();
        tree
    }

    fn random_subsidies(g: &ndg_graph::Graph, rng: &mut StdRng) -> SubsidyAssignment {
        let mut b = SubsidyAssignment::zero(g);
        for e in g.edge_ids() {
            match rng.random_range(0..4u32) {
                0 => {}
                1 => b.set(g, e, g.weight(e)),
                _ => {
                    let w = g.weight(e);
                    b.set(g, e, rng.random_range(0.0..=w));
                }
            }
        }
        b
    }

    /// Assert the maintained certification and a from-scratch sweep (at
    /// the given executor) agree to the bit on the engine's live state.
    fn assert_matches_scratch(
        engine: &mut IncrementalDynamics,
        game: &NetworkDesignGame,
        b: &SubsidyAssignment,
        ex: ndg_exec::Executor,
    ) {
        let mut scratch = BatchCertifier::with_executor(ex);
        let state = engine.state().clone();
        let reference = scratch.certify(game, &state, b);
        let maintained = engine.batch_certify();
        match (&maintained, &reference) {
            (BatchCertification::Equilibrium, BatchCertification::Equilibrium) => {
                assert!(
                    find_deviation(game, &state, b).is_none(),
                    "certified equilibrium but find_deviation improves"
                );
            }
            (BatchCertification::Violation(m), BatchCertification::Violation(s)) => {
                assert_eq!(m.node, s.node, "witness player diverged");
                assert_eq!(m.via, s.via, "witness edge diverged");
                assert_eq!(m.to, s.to, "witness entry node diverged");
                assert_eq!(m.lhs.to_bits(), s.lhs.to_bits(), "lhs bits diverged");
                assert_eq!(m.rhs.to_bits(), s.rhs.to_bits(), "rhs bits diverged");
                assert!(
                    find_deviation(game, &state, b).is_some(),
                    "certified violation but find_deviation finds none"
                );
            }
            (BatchCertification::NotApplicable, BatchCertification::NotApplicable) => {}
            (m, s) => panic!("maintained {m:?} vs scratch {s:?}"),
        }
    }

    #[test]
    fn maintained_view_matches_scratch_over_random_move_sequences() {
        // The tentpole property test: drive 1–64 random engine moves on
        // random broadcast trees with random subsidies and assert, after
        // every applied move, that the maintained certification is
        // bit-identical to a from-scratch BatchCertifier sweep (and
        // consistent with find_deviation). Elementary swaps exercise the
        // O(Δ) path; non-leaf movers exercise invalidation + re-adoption.
        let mut rng = StdRng::seed_from_u64(1300);
        for case in 0..40 {
            let n = rng.random_range(4..12usize);
            let g = generators::random_connected(n, 0.5, &mut rng, 0.0..3.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let tree = random_tree(game.graph(), &mut rng);
            let (state, _) = State::from_tree(&game, &tree).unwrap();
            let b = random_subsidies(game.graph(), &mut rng);
            let mut engine = IncrementalDynamics::new(&game, state, &b);
            let budget = rng.random_range(1..=64usize);
            let ex = if case % 2 == 0 {
                ndg_exec::Executor::sequential()
            } else {
                ndg_exec::Executor::new(8)
            };
            assert_matches_scratch(&mut engine, &game, &b, ex);
            for _ in 0..budget {
                let i = rng.random_range(0..game.num_players());
                if engine.try_improve(i).is_some() {
                    assert_matches_scratch(&mut engine, &game, &b, ex);
                }
            }
        }
    }

    #[test]
    fn readopt_is_bitwise_equal_to_a_fresh_certifier() {
        // The serving layer's delta sessions re-adopt a certifier onto a
        // *patched* instance; the contract is that the re-adopted view is
        // indistinguishable from a brand-new certifier adopting the same
        // `(game, state, b)` — same validity, bit-identical witnesses.
        let mut rng = StdRng::seed_from_u64(1600);
        for _ in 0..40 {
            let n = rng.random_range(4..12usize);
            let g1 = generators::random_connected(n, 0.5, &mut rng, 0.0..3.0);
            let game1 = NetworkDesignGame::broadcast(g1, NodeId(0)).unwrap();
            let tree1 = random_tree(game1.graph(), &mut rng);
            let (state1, _) = State::from_tree(&game1, &tree1).unwrap();
            let b1 = random_subsidies(game1.graph(), &mut rng);
            let mut cert = IncrementalCertifier::new();
            assert!(cert.adopt(&game1, &state1, &b1));
            let _ = cert.certify(&game1, &b1); // warm every margin
                                               // Patch: an unrelated instance stands in for the delta result.
            let n2 = rng.random_range(4..12usize);
            let g2 = generators::random_connected(n2, 0.6, &mut rng, 0.0..3.0);
            let game2 = NetworkDesignGame::broadcast(g2, NodeId(0)).unwrap();
            let tree2 = random_tree(game2.graph(), &mut rng);
            let (state2, _) = State::from_tree(&game2, &tree2).unwrap();
            let b2 = random_subsidies(game2.graph(), &mut rng);
            let mut fresh = IncrementalCertifier::new();
            let fresh_ok = fresh.adopt(&game2, &state2, &b2);
            let readopt_ok = cert.readopt(&game2, &state2, &b2);
            assert_eq!(readopt_ok, fresh_ok);
            assert_eq!(cert.is_valid(), fresh.is_valid());
            match (cert.certify(&game2, &b2), fresh.certify(&game2, &b2)) {
                (BatchCertification::Equilibrium, BatchCertification::Equilibrium)
                | (BatchCertification::NotApplicable, BatchCertification::NotApplicable) => {}
                (BatchCertification::Violation(a), BatchCertification::Violation(f)) => {
                    assert_eq!((a.node, a.via, a.to), (f.node, f.via, f.to));
                    assert_eq!(a.lhs.to_bits(), f.lhs.to_bits());
                    assert_eq!(a.rhs.to_bits(), f.rhs.to_bits());
                }
                (a, f) => panic!("readopted {a:?} vs fresh {f:?}"),
            }
            assert_eq!(
                cert.equilibrium(&game2, &b2),
                fresh.equilibrium(&game2, &b2)
            );
        }
    }

    #[test]
    fn maintained_equilibrium_matches_find_deviation_after_moves() {
        // The engine-facing global certificate: whenever the maintained
        // view is live, its equilibrium answer must agree with the exact
        // per-player checker after every move attempt (Lemma 2 is a
        // global criterion — this, not per-player margin skipping, is the
        // sound way to consume the margins; a single player's clean
        // margins do not certify that she cannot improve).
        let mut rng = StdRng::seed_from_u64(1301);
        for _ in 0..30 {
            let n = rng.random_range(4..10usize);
            let g = generators::random_connected(n, 0.5, &mut rng, 0.2..3.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let tree = random_tree(game.graph(), &mut rng);
            let (state, _) = State::from_tree(&game, &tree).unwrap();
            let b = random_subsidies(game.graph(), &mut rng);
            let mut engine = IncrementalDynamics::new(&game, state, &b);
            for _ in 0..rng.random_range(1..=24usize) {
                let i = rng.random_range(0..game.num_players());
                engine.try_improve(i);
                if let Some(eq) = engine.maintained_equilibrium() {
                    assert_eq!(
                        eq,
                        find_deviation(&game, engine.state(), &b).is_none(),
                        "maintained equilibrium answer diverged from find_deviation"
                    );
                }
            }
        }
    }
}
