//! `ndg-canon` — instance canonicalization for isomorphism-aware caching
//! and scenario dedup.
//!
//! Two clients that generate game instances independently almost never
//! agree on node numbering: a serving cache keyed on literal bytes treats
//! every relabeling of the same game as fresh work. This crate computes a
//! **canonical relabeling** of a full instance — graph + edge weights +
//! player demand sets (broadcast / general / weighted) — so that every
//! member of an isomorphism class maps to one representative:
//!
//! 1. **Partition refinement** ([`ndg_graph::refine_partition`]) over
//!    keyed arcs: graph edges carry their weight bits, player pairs carry
//!    role-tagged demand bits, and the broadcast root is seeded into its
//!    own class. The first round therefore separates nodes by (degree,
//!    sorted incident-weight multiset, demand membership), and iteration
//!    propagates those distinctions.
//! 2. **Deterministic individualization**: while the partition is not
//!    discrete, the smallest remaining colour class is split. *Twin*
//!    cells (members with byte-identical keyed neighbourhoods — isolated
//!    nodes, identical pendant leaves, interchangeable parallel
//!    structure) are split in one shot, since any ordering of a twin
//!    orbit is realized by an automorphism; other cells branch over every
//!    member.
//! 3. **Canonical BFS-code tiebreak** ([`ndg_graph::bfs_code`]): at the
//!    first branching level the refinement-equivalent root candidates are
//!    pruned to the group with the minimal BFS code, an isomorphism-
//!    invariant filter that usually collapses the branch factor before
//!    the exhaustive search runs.
//! 4. Among the surviving discrete labelings, the one whose relabeled
//!    instance serialization ([`leaf code`](Instance)) is lexicographically
//!    minimal wins.
//!
//! [`canonicalize`] returns the canonical [`Instance`] together with a
//! [`Relabeling`] — the permutation triple (nodes, edges, players) plus
//! `apply`/`unapply` mappings for every payload shape the serving codec
//! knows: edge sets, per-edge vectors (subsidies), per-player vectors
//! (costs, demands), state paths, and single node / player / edge ids
//! (violation witnesses). [`ndg_core::State::permuted`] and
//! [`ndg_core::SubsidyAssignment::permuted`] carry the same mappings onto
//! the in-memory solver types, bit-exactly.
//!
//! # Invariance, budgets, and the fallback
//!
//! Every step of the search is a function of instance *structure*, never
//! of labels: seeds, refinement, twin detection, BFS codes and leaf codes
//! all commute with node relabeling, and budget trips fire identically on
//! isomorphic inputs. Consequently `canonicalize(π·G)` and
//! `canonicalize(G)` produce byte-identical canonical instances whenever
//! they produce one at all. When an instance is too large
//! ([`CANON_MAX_NODES`] / [`CANON_MAX_EDGES`]), too symmetric for the
//! leaf budget, or too expensive for the total work budget (refinement
//! rounds × structure size — the bound that keeps adversarial symmetric
//! wire instances at low-millisecond cost), [`canonicalize`] returns
//! `None` and callers fall back to literal keying — correctness is never
//! at stake, only the isomorphism hit rate.
//!
//! Costs are label-invariant but witness *choices* (argmin trees,
//! violator order) need not be, so equivalence of the canonical pipeline
//! is property-tested end to end (serve's `canon_equivariance` suite)
//! rather than assumed.

use ndg_core::{NetworkDesignGame, State, StateError, SubsidyAssignment, SubsidyError};
use ndg_graph::{bfs_code, condense, EdgeId, Graph, Refinement};

/// Largest node count canonicalized; bigger instances fall back to
/// literal keying.
pub const CANON_MAX_NODES: usize = 4096;
/// Largest edge count canonicalized.
pub const CANON_MAX_EDGES: usize = 16384;
/// Maximum discrete labelings (search leaves) examined before declaring
/// the instance too symmetric and falling back.
pub const CANON_LEAF_BUDGET: usize = 48;
/// Total work units (refinement rounds, BFS codes and leaf
/// serializations, each costing `nodes + arcs`) one canonicalization may
/// spend before falling back — this, not the leaf count, is what bounds
/// wall-clock on large symmetric instances to low milliseconds.
const CANON_WORK_BUDGET: i64 = 2_000_000;
/// Refinement rounds per call (stopping early only coarsens, invariantly).
const REFINE_ROUNDS: usize = 64;

/// Arc-key layout: `tag (bits 120..) | attachment class (bits 64..120) |
/// weight-or-demand bits (bits 0..64)`. Tags: plain graph edge, player
/// source→terminal, player terminal→source.
const TAG_EDGE: u128 = 0;
const TAG_PLAYER_SRC: u128 = 1 << 120;
const TAG_PLAYER_DST: u128 = 2 << 120;
const CLASS_SHIFT: u32 = 64;

/// A neutral, codec-agnostic game instance: the common shape behind
/// broadcast (`root = Some`, players implied as one per non-root node),
/// general (`players` explicit) and weighted (`demands` attached) games.
#[derive(Clone, Debug, PartialEq)]
pub struct Instance {
    /// Node count; node ids are `0..n`.
    pub n: usize,
    /// Edge list in edge-id order: `(u, v, w)`.
    pub edges: Vec<(u32, u32, f64)>,
    /// Broadcast root. `Some` ⇒ `players`/`demands` are empty/ignored and
    /// the implied players are the non-root nodes in ascending order.
    pub root: Option<u32>,
    /// Explicit `(source, terminal)` pairs (general / weighted games).
    pub players: Vec<(u32, u32)>,
    /// One positive demand per player (weighted games).
    pub demands: Option<Vec<f64>>,
}

impl Instance {
    /// The neutral instance of an in-memory game (broadcast or general),
    /// with optional per-player demands. This is the bridge the
    /// enumeration/reduction orbit machinery uses to ask canon questions
    /// about solver-side games without going through the wire codec.
    pub fn of_game(game: &NetworkDesignGame, demands: Option<Vec<f64>>) -> Instance {
        let g = game.graph();
        Instance {
            n: g.node_count(),
            edges: g.edges().map(|(_, e)| (e.u.0, e.v.0, e.w)).collect(),
            root: game.root().map(|r| r.0),
            players: if game.root().is_some() {
                Vec::new()
            } else {
                game.players()
                    .iter()
                    .map(|p| (p.source.0, p.terminal.0))
                    .collect()
            },
            demands,
        }
    }

    /// Number of players (implied for broadcast).
    pub fn num_players(&self) -> usize {
        if self.root.is_some() {
            self.n.saturating_sub(1)
        } else {
            self.players.len()
        }
    }

    /// Structural sanity required before canonicalizing: endpoints in
    /// range and demand vector sized to the players. (Game-level
    /// validity — connectivity, self-loops, positivity — is *not*
    /// checked: invalid instances canonicalize fine and fail in the
    /// solver with the canonical-space diagnostics.)
    fn mappable(&self) -> bool {
        let n = self.n as u32;
        if self.n == 0 || self.n > CANON_MAX_NODES || self.edges.len() > CANON_MAX_EDGES {
            return false;
        }
        if !self.edges.iter().all(|&(u, v, _)| u < n && v < n) {
            return false;
        }
        if let Some(r) = self.root {
            return r < n;
        }
        if !self.players.iter().all(|&(s, t)| s < n && t < n) {
            return false;
        }
        match &self.demands {
            Some(d) => d.len() == self.players.len(),
            None => true,
        }
    }

    /// The keyed arc list refinement runs on: two arcs per undirected
    /// edge (key = weight bits | the edge's attachment class), two
    /// role-tagged arcs per player pair (key = role tag | demand bits |
    /// the player's attachment class). Decorating the keys with
    /// attachment classes makes refinement — and therefore twin
    /// detection — aware of attachments, so symmetric instances whose
    /// *attachments* break the symmetry still split correctly.
    fn arcs(&self, decor: &AttachmentClasses) -> Vec<(u32, u32, u128)> {
        let mut arcs = Vec::with_capacity(2 * (self.edges.len() + self.players.len()));
        for (e, &(u, v, w)) in self.edges.iter().enumerate() {
            let class = u128::from(decor.edge_class[e]) << CLASS_SHIFT;
            let key = TAG_EDGE | class | u128::from(w.to_bits());
            arcs.push((u, v, key));
            arcs.push((v, u, key));
        }
        for (i, &(s, t)) in self.players.iter().enumerate() {
            let dbits = match &self.demands {
                Some(d) => u128::from(d[i].to_bits()),
                None => 0,
            };
            let class = u128::from(decor.player_class[i]) << CLASS_SHIFT;
            arcs.push((s, t, TAG_PLAYER_SRC | class | dbits));
            arcs.push((t, s, TAG_PLAYER_DST | class | dbits));
        }
        arcs
    }

    /// Initial colours: the broadcast root is its own class (players are
    /// implied by it) and each broadcast node carries its implied
    /// player's attachment class; everything else starts uniform — round
    /// one of refinement then splits by (degree, weight multiset, demand
    /// membership) via the arc keys.
    fn seed(&self, decor: &AttachmentClasses) -> Vec<u32> {
        match self.root {
            Some(r) => {
                let mut seed = vec![0u32; self.n];
                let mut player = 0usize;
                for (v, colour) in seed.iter_mut().enumerate() {
                    if v as u32 == r {
                        continue;
                    }
                    *colour = 1 + decor.player_class[player];
                    player += 1;
                }
                // The root stays colour 0 and can never collide with a
                // player class (those start at 1).
                seed
            }
            None => vec![0u32; self.n],
        }
    }
}

/// Request attachments that ride along with an instance and must be
/// carried through the same relabeling: edge *sets* (target trees), per-
/// edge *vectors* (subsidies), and per-player *path lists* (explicit
/// states). Canonicalization keys on the decorated pair — both in the
/// refinement (attachment classes enter the arc keys, keeping twin
/// detection sound) and in the final leaf tie-break (among automorphic
/// labelings of the bare instance, the one minimizing the *mapped
/// attachments* wins) — so isomorphic requests, not merely isomorphic
/// instances, canonicalize to byte-identical forms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Attachments {
    /// Edge-id sets (e.g. `tree=`), each a subset of the instance edges.
    pub edge_sets: Vec<Vec<EdgeId>>,
    /// Per-edge float vectors (e.g. `b=`), each of length `edges.len()`.
    pub edge_vectors: Vec<Vec<f64>>,
    /// Per-player path lists (e.g. `state=`), each holding one edge
    /// sequence per player.
    pub path_lists: Vec<Vec<Vec<EdgeId>>>,
}

impl Attachments {
    /// Dimensional sanity against the instance.
    fn mappable(&self, inst: &Instance) -> bool {
        let m = inst.edges.len();
        let players = inst.num_players();
        self.edge_sets
            .iter()
            .chain(self.path_lists.iter().flatten())
            .all(|ids| ids.iter().all(|e| e.index() < m))
            && self.edge_vectors.iter().all(|v| v.len() == m)
            && self.path_lists.iter().all(|l| l.len() == players)
    }
}

/// Dense attachment classes per edge and per player: label-invariant
/// summaries of how the attachments touch each object, condensed into
/// small ids that fit the arc-key class field.
struct AttachmentClasses {
    edge_class: Vec<u32>,
    player_class: Vec<u32>,
}

fn attachment_classes(inst: &Instance, att: &Attachments) -> AttachmentClasses {
    let m = inst.edges.len();
    let players = inst.num_players();
    // Per edge: membership bit per set, value bits per vector, usage
    // count per path list.
    let mut edge_tuples: Vec<Vec<u64>> = vec![Vec::new(); m];
    for set in &att.edge_sets {
        let mut member = vec![0u64; m];
        for e in set {
            member[e.index()] = 1;
        }
        for (e, t) in edge_tuples.iter_mut().enumerate() {
            t.push(member[e]);
        }
    }
    for vector in &att.edge_vectors {
        for (e, t) in edge_tuples.iter_mut().enumerate() {
            t.push(vector[e].to_bits());
        }
    }
    for list in &att.path_lists {
        let mut usage = vec![0u64; m];
        for path in list {
            for e in path {
                usage[e.index()] += 1;
            }
        }
        for (e, t) in edge_tuples.iter_mut().enumerate() {
            t.push(usage[e]);
        }
    }
    let edge_class = condense(&edge_tuples);
    // Per player: each of her paths as the sequence of edge classes and
    // weight bits along it (order preserved — paths are sequences).
    let mut player_tuples: Vec<Vec<u64>> = vec![Vec::new(); players];
    for list in &att.path_lists {
        for (i, path) in list.iter().enumerate() {
            player_tuples[i].push(path.len() as u64);
            for e in path {
                player_tuples[i].push(u64::from(edge_class[e.index()]));
                player_tuples[i].push(inst.edges[e.index()].2.to_bits());
            }
        }
    }
    AttachmentClasses {
        edge_class,
        player_class: condense(&player_tuples),
    }
}

/// The permutation triple of a relabeling (old → new for nodes, edge ids
/// and player indices), with `apply`/`unapply` mappings for every payload
/// shape the codec knows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relabeling {
    node: Vec<u32>,
    node_inv: Vec<u32>,
    edge: Vec<u32>,
    edge_inv: Vec<u32>,
    player: Vec<u32>,
    player_inv: Vec<u32>,
}

fn invert(perm: &[u32]) -> Vec<u32> {
    let mut inv = vec![0u32; perm.len()];
    for (old, &new) in perm.iter().enumerate() {
        inv[new as usize] = old as u32;
    }
    inv
}

impl Relabeling {
    fn new(node: Vec<u32>, edge: Vec<u32>, player: Vec<u32>) -> Relabeling {
        Relabeling {
            node_inv: invert(&node),
            edge_inv: invert(&edge),
            player_inv: invert(&player),
            node,
            edge,
            player,
        }
    }

    /// The identity relabeling for the given dimensions.
    pub fn identity(nodes: usize, edges: usize, players: usize) -> Relabeling {
        Relabeling::new(
            (0..nodes as u32).collect(),
            (0..edges as u32).collect(),
            (0..players as u32).collect(),
        )
    }

    /// Whether all three permutations are the identity.
    pub fn is_identity(&self) -> bool {
        let id = |p: &[u32]| p.iter().enumerate().all(|(i, &x)| i as u32 == x);
        id(&self.node) && id(&self.edge) && id(&self.player)
    }

    /// The inverse relabeling (swap apply and unapply).
    pub fn inverse(&self) -> Relabeling {
        Relabeling {
            node: self.node_inv.clone(),
            node_inv: self.node.clone(),
            edge: self.edge_inv.clone(),
            edge_inv: self.edge.clone(),
            player: self.player_inv.clone(),
            player_inv: self.player.clone(),
        }
    }

    /// Old node id → new node id.
    pub fn apply_node(&self, v: u32) -> u32 {
        self.node[v as usize]
    }

    /// New node id → old node id.
    pub fn unapply_node(&self, v: u32) -> u32 {
        self.node_inv[v as usize]
    }

    /// Old edge id → new edge id.
    pub fn apply_edge(&self, e: EdgeId) -> EdgeId {
        EdgeId(self.edge[e.index()])
    }

    /// New edge id → old edge id.
    pub fn unapply_edge(&self, e: EdgeId) -> EdgeId {
        EdgeId(self.edge_inv[e.index()])
    }

    /// Old player index → new player index.
    pub fn apply_player(&self, i: usize) -> usize {
        self.player[i] as usize
    }

    /// New player index → old player index.
    pub fn unapply_player(&self, i: usize) -> usize {
        self.player_inv[i] as usize
    }

    /// Number of nodes the relabeling covers.
    pub fn node_count(&self) -> usize {
        self.node.len()
    }

    /// Number of edges the relabeling covers.
    pub fn edge_count(&self) -> usize {
        self.edge.len()
    }

    /// Number of players the relabeling covers.
    pub fn player_count(&self) -> usize {
        self.player.len()
    }

    /// The old→new edge permutation as `EdgeId`s (the shape
    /// [`State::permuted`] / [`SubsidyAssignment::permuted`] take).
    pub fn edge_map(&self) -> Vec<EdgeId> {
        self.edge.iter().map(|&e| EdgeId(e)).collect()
    }

    /// The old→new player permutation as indices.
    pub fn player_map(&self) -> Vec<usize> {
        self.player.iter().map(|&p| p as usize).collect()
    }

    /// Map an edge *set* into the new labels (sorted ascending — sets are
    /// presented canonically).
    pub fn apply_edge_set(&self, edges: &[EdgeId]) -> Vec<EdgeId> {
        let mut out: Vec<EdgeId> = edges.iter().map(|&e| self.apply_edge(e)).collect();
        out.sort();
        out
    }

    /// Map an edge set back to the old labels (sorted ascending).
    pub fn unapply_edge_set(&self, edges: &[EdgeId]) -> Vec<EdgeId> {
        let mut out: Vec<EdgeId> = edges.iter().map(|&e| self.unapply_edge(e)).collect();
        out.sort();
        out
    }

    /// Map an edge *sequence* (a path) into the new labels, order
    /// preserved.
    pub fn apply_edge_seq(&self, edges: &[EdgeId]) -> Vec<EdgeId> {
        edges.iter().map(|&e| self.apply_edge(e)).collect()
    }

    /// Map an edge sequence back, order preserved.
    pub fn unapply_edge_seq(&self, edges: &[EdgeId]) -> Vec<EdgeId> {
        edges.iter().map(|&e| self.unapply_edge(e)).collect()
    }

    /// Reindex a per-edge vector (subsidies, per-edge stats): slot
    /// `apply_edge(e)` of the result holds `xs[e]`. Values are moved, not
    /// recomputed — bit-exact.
    pub fn apply_edge_values<T: Clone>(&self, xs: &[T]) -> Vec<T> {
        let mut out: Vec<Option<T>> = vec![None; xs.len()];
        for (old, x) in xs.iter().enumerate() {
            out[self.edge[old] as usize] = Some(x.clone());
        }
        out.into_iter().map(|x| x.expect("permutation")).collect()
    }

    /// Inverse of [`apply_edge_values`](Self::apply_edge_values).
    pub fn unapply_edge_values<T: Clone>(&self, xs: &[T]) -> Vec<T> {
        let mut out: Vec<Option<T>> = vec![None; xs.len()];
        for (new, x) in xs.iter().enumerate() {
            out[self.edge_inv[new] as usize] = Some(x.clone());
        }
        out.into_iter().map(|x| x.expect("permutation")).collect()
    }

    /// Reindex a per-player vector (demands, cost arrays).
    pub fn apply_player_values<T: Clone>(&self, xs: &[T]) -> Vec<T> {
        let mut out: Vec<Option<T>> = vec![None; xs.len()];
        for (old, x) in xs.iter().enumerate() {
            out[self.player[old] as usize] = Some(x.clone());
        }
        out.into_iter().map(|x| x.expect("permutation")).collect()
    }

    /// Inverse of [`apply_player_values`](Self::apply_player_values).
    pub fn unapply_player_values<T: Clone>(&self, xs: &[T]) -> Vec<T> {
        let mut out: Vec<Option<T>> = vec![None; xs.len()];
        for (new, x) in xs.iter().enumerate() {
            out[self.player_inv[new] as usize] = Some(x.clone());
        }
        out.into_iter().map(|x| x.expect("permutation")).collect()
    }

    /// Map per-player strategy paths: player reorder plus per-path edge
    /// sequence mapping.
    pub fn apply_paths(&self, paths: &[Vec<EdgeId>]) -> Vec<Vec<EdgeId>> {
        self.apply_player_values(
            &paths
                .iter()
                .map(|p| self.apply_edge_seq(p))
                .collect::<Vec<_>>(),
        )
    }

    /// Inverse of [`apply_paths`](Self::apply_paths).
    pub fn unapply_paths(&self, paths: &[Vec<EdgeId>]) -> Vec<Vec<EdgeId>> {
        self.unapply_player_values(
            &paths
                .iter()
                .map(|p| self.unapply_edge_seq(p))
                .collect::<Vec<_>>(),
        )
    }

    /// Map an in-memory [`State`] onto the relabeled game (validated).
    pub fn apply_state(&self, target: &NetworkDesignGame, s: &State) -> Result<State, StateError> {
        s.permuted(target, &self.player_map(), &self.edge_map())
    }

    /// Map a [`SubsidyAssignment`] onto the relabeled graph (validated).
    pub fn apply_subsidies(
        &self,
        target: &Graph,
        b: &SubsidyAssignment,
    ) -> Result<SubsidyAssignment, SubsidyError> {
        b.permuted(target, &self.edge_map())
    }
}

/// Apply an explicit relabeling: `node_map[old] = new`;
/// `edge_order[k]` / `player_order[k]` give the old edge id / player
/// index presented `k`-th in the result. For broadcast instances the
/// player permutation is implied by the node map (players are the
/// non-root nodes in ascending id order) and `player_order` is ignored.
/// With `normalize`, each relabeled edge is presented `(min, max)` — the
/// canonical endpoint order.
fn apply_relabeling(
    inst: &Instance,
    node_map: &[u32],
    edge_order: &[u32],
    player_order: &[u32],
    normalize: bool,
) -> (Instance, Relabeling) {
    assert_eq!(node_map.len(), inst.n);
    assert_eq!(edge_order.len(), inst.edges.len());
    let mut edges = Vec::with_capacity(inst.edges.len());
    let mut edge_perm = vec![0u32; inst.edges.len()];
    for (k, &old) in edge_order.iter().enumerate() {
        let (u, v, w) = inst.edges[old as usize];
        let (mut a, mut b) = (node_map[u as usize], node_map[v as usize]);
        if normalize && a > b {
            std::mem::swap(&mut a, &mut b);
        }
        edges.push((a, b, w));
        edge_perm[old as usize] = k as u32;
    }
    let (root, players, demands, player_perm) = match inst.root {
        Some(r) => {
            let new_root = node_map[r as usize];
            // Broadcast player i sits at the i-th non-root old node; its
            // new index is its new node id's rank among non-root ids.
            let mut perm = Vec::with_capacity(inst.n.saturating_sub(1));
            for v in 0..inst.n as u32 {
                if v == r {
                    continue;
                }
                let x = node_map[v as usize];
                perm.push(if x > new_root { x - 1 } else { x });
            }
            (Some(new_root), Vec::new(), None, perm)
        }
        None => {
            assert_eq!(player_order.len(), inst.players.len());
            let mut players = Vec::with_capacity(inst.players.len());
            let mut demands = inst.demands.as_ref().map(|_| Vec::new());
            let mut perm = vec![0u32; inst.players.len()];
            for (k, &old) in player_order.iter().enumerate() {
                let (s, t) = inst.players[old as usize];
                players.push((node_map[s as usize], node_map[t as usize]));
                if let (Some(out), Some(d)) = (demands.as_mut(), inst.demands.as_ref()) {
                    out.push(d[old as usize]);
                }
                perm[old as usize] = k as u32;
            }
            (None, players, demands, perm)
        }
    };
    let relabeled = Instance {
        n: inst.n,
        edges,
        root,
        players,
        demands,
    };
    (
        relabeled,
        Relabeling::new(node_map.to_vec(), edge_perm, player_perm),
    )
}

/// Relabel an instance by an arbitrary node permutation and presentation
/// orders (`edge_order[k]` = old edge id listed `k`-th, likewise
/// `player_order`; ignored for broadcast). Used to *generate* isomorphic
/// duplicates (workloads, property tests); endpoints keep their mapped
/// insertion order, so the result looks like an independent client wrote
/// it. Panics on dimension mismatch — callers own the perms.
pub fn relabel(
    inst: &Instance,
    node_map: &[u32],
    edge_order: &[u32],
    player_order: &[u32],
) -> (Instance, Relabeling) {
    apply_relabeling(inst, node_map, edge_order, player_order, false)
}

/// [`canonicalize_with`] for a bare instance (no attachments).
pub fn canonicalize(inst: &Instance) -> Option<(Instance, Relabeling)> {
    canonicalize_with(inst, &Attachments::default())
}

/// Compute the canonical form of the decorated pair `(inst, att)`: the
/// canonical instance plus the relabeling that carries `inst` onto it,
/// chosen so that the attachments mapped through the relabeling are
/// byte-identical across isomorphic requests (the attachments break
/// automorphism ties). Returns `None` when the pair is not mappable
/// (endpoints out of range, mis-sized vectors), too large, or too
/// symmetric for the search budgets — the caller then keys literally,
/// losing only isomorphism hits.
///
/// One caveat is accepted by design: records that are *fully* identical
/// — parallel edges with equal endpoints and weight bits, or duplicate
/// player pairs with equal demands — are interchangeable in the
/// canonical form, and attachments that distinguish between them may map
/// differently across isomorphs (a missed share, never a wrong answer).
pub fn canonicalize_with(inst: &Instance, att: &Attachments) -> Option<(Instance, Relabeling)> {
    canonicalize_inner(inst, att, false).map(|(canon, map, _)| (canon, map))
}

/// [`canonicalize_with`], additionally reporting the **automorphism
/// generators** of the decorated pair discovered along the search:
/// transpositions of twin-orbit members plus the label permutations
/// between equal-leaf-code labelings, every candidate *verified* against
/// the decorated instance before it is returned (soundness never depends
/// on the discovery heuristics). The generator set may be a proper
/// subset of a full generating set — consumers (orbit pruning, gadget
/// dedup) remain exact under any subgroup, only less effective. Falls
/// back exactly like [`canonicalize_with`] (`None` on unmappable /
/// over-budget input); callers then use the trivial group.
pub fn canonicalize_with_autos(
    inst: &Instance,
    att: &Attachments,
) -> Option<(Instance, Relabeling, AutGenerators)> {
    canonicalize_inner(inst, att, true)
}

/// Verified automorphism generators of a bare instance; empty on any
/// fallback (the "trivial group" mirror of the literal-keying fallback).
pub fn automorphisms(inst: &Instance) -> AutGenerators {
    automorphisms_with(inst, &Attachments::default())
}

/// Verified automorphism generators of a decorated pair; empty on any
/// fallback.
pub fn automorphisms_with(inst: &Instance, att: &Attachments) -> AutGenerators {
    canonicalize_with_autos(inst, att)
        .map(|(_, _, gens)| gens)
        .unwrap_or_default()
}

fn canonicalize_inner(
    inst: &Instance,
    att: &Attachments,
    collect: bool,
) -> Option<(Instance, Relabeling, AutGenerators)> {
    if !inst.mappable() || !att.mappable(inst) {
        return None;
    }
    let decor = attachment_classes(inst, att);
    let arcs = inst.arcs(&decor);
    let mut search = Search {
        inst,
        att,
        arcs: &arcs,
        arc_sigs: arc_signatures(inst.n, &arcs),
        leaves: 0,
        work: CANON_WORK_BUDGET,
        aborted: false,
        best: None,
        collect,
        candidates: Vec::new(),
    };
    let seed = inst.seed(&decor);
    let base = search.refine(&seed)?;
    search.run(base, 0);
    if search.aborted {
        return None;
    }
    let candidates = std::mem::take(&mut search.candidates);
    let (_, labels) = search.best?;
    let gens = if collect {
        verify_candidates(inst, &decor, candidates)
    } else {
        AutGenerators::default()
    };
    // Canonical presentation orders under the winning labels: edges by
    // (endpoints, weight bits), players by (endpoints, demand bits);
    // original index last so fully identical records (interchangeable by
    // construction) stay deterministic per input.
    let mut edge_order: Vec<u32> = (0..inst.edges.len() as u32).collect();
    edge_order.sort_by_key(|&e| {
        let (u, v, w) = inst.edges[e as usize];
        let (a, b) = minmax(labels[u as usize], labels[v as usize]);
        (a, b, w.to_bits(), e)
    });
    let mut player_order: Vec<u32> = (0..inst.players.len() as u32).collect();
    player_order.sort_by_key(|&i| {
        let (s, t) = inst.players[i as usize];
        let d = inst.demands.as_ref().map_or(0, |d| d[i as usize].to_bits());
        (labels[s as usize], labels[t as usize], d, i)
    });
    let (canon, map) = apply_relabeling(inst, &labels, &edge_order, &player_order, true);
    Some((canon, map, gens))
}

/// Verified automorphism generators of a decorated instance, as parallel
/// lists of node / edge / player permutations (`perm[old] = old'`, all in
/// the *input* label space). Produced by [`canonicalize_with_autos`] /
/// [`automorphisms_with`]; an empty set is the trivial group (either the
/// instance is rigid or the search fell back).
///
/// Guarantees, per generator `i`: `node[i]` is a graph automorphism that
/// fixes the broadcast root, maps every edge onto an edge with identical
/// weight *bits* and identical attachment class (so edge-set and
/// edge-vector attachments are preserved exactly), and maps every player
/// onto a player with identical demand bits and attachment class.
/// `edge[i]` / `player[i]` are the induced permutations. Records that are
/// fully identical (parallel edges with equal endpoints and weight bits)
/// are interchangeable, matching the canonicalization caveat.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AutGenerators {
    /// Node maps (`old node id → old node id`).
    pub node: Vec<Vec<u32>>,
    /// Induced edge permutations (`old edge id → old edge id`).
    pub edge: Vec<Vec<u32>>,
    /// Induced player permutations (`old player index → old player index`).
    pub player: Vec<Vec<u32>>,
}

impl AutGenerators {
    /// Whether the group is (known to be) trivial.
    pub fn is_empty(&self) -> bool {
        self.node.is_empty()
    }

    /// Number of generators.
    pub fn len(&self) -> usize {
        self.node.len()
    }
}

/// Cap on collected automorphism candidates per search: a wide twin
/// orbit (hundreds of interchangeable leaves) does not need hundreds of
/// transposition generators to be *useful* — any subgroup keeps the
/// consumers exact — and the cap keeps collection cost negligible next
/// to the search itself.
const MAX_AUT_CANDIDATES: usize = 64;

/// Filter candidate node maps down to verified automorphisms with their
/// induced edge/player permutations. Deduplicates; drops the identity.
fn verify_candidates(
    inst: &Instance,
    decor: &AttachmentClasses,
    candidates: Vec<Vec<u32>>,
) -> AutGenerators {
    let mut gens = AutGenerators::default();
    let mut seen: std::collections::HashSet<Vec<u32>> = std::collections::HashSet::new();
    for node_map in candidates {
        if node_map.iter().enumerate().all(|(v, &x)| v as u32 == x) {
            continue;
        }
        if !seen.insert(node_map.clone()) {
            continue;
        }
        if let Some((edge, player)) = induced_maps(inst, decor, &node_map) {
            gens.node.push(node_map);
            gens.edge.push(edge);
            gens.player.push(player);
        }
    }
    gens
}

/// Check that `node_map` is an automorphism of the decorated instance
/// and compute the induced edge and player permutations. Identical
/// records (equal endpoints, weight bits and attachment class) are
/// matched in id order — interchangeable by the canonicalization caveat.
fn induced_maps(
    inst: &Instance,
    decor: &AttachmentClasses,
    node_map: &[u32],
) -> Option<(Vec<u32>, Vec<u32>)> {
    use std::collections::HashMap;
    let n = inst.n as u32;
    if node_map.len() != inst.n || !node_map.iter().all(|&x| x < n) {
        return None;
    }
    // Must be a bijection.
    let mut hit = vec![false; inst.n];
    for &x in node_map {
        if std::mem::replace(&mut hit[x as usize], true) {
            return None;
        }
    }
    // Edge bijection: bucket original edges by (endpoints, weight bits,
    // attachment class); each source edge consumes one image edge from
    // the bucket of its mapped key, smallest ids first.
    let mut buckets: HashMap<(u32, u32, u64, u32), Vec<u32>> = HashMap::new();
    for (e, &(u, v, w)) in inst.edges.iter().enumerate() {
        let (a, b) = minmax(u, v);
        buckets
            .entry((a, b, w.to_bits(), decor.edge_class[e]))
            .or_default()
            .push(e as u32);
    }
    // Consume from the front so images come out in ascending id order.
    let mut next: HashMap<(u32, u32, u64, u32), usize> = HashMap::new();
    let mut edge_perm = vec![0u32; inst.edges.len()];
    for (e, &(u, v, w)) in inst.edges.iter().enumerate() {
        let (a, b) = minmax(node_map[u as usize], node_map[v as usize]);
        let key = (a, b, w.to_bits(), decor.edge_class[e]);
        let ids = buckets.get(&key)?;
        let cursor = next.entry(key).or_insert(0);
        let img = *ids.get(*cursor)?;
        *cursor += 1;
        edge_perm[e] = img;
    }
    // Player bijection.
    let player_perm = match inst.root {
        Some(r) => {
            if node_map[r as usize] != r {
                return None;
            }
            // Broadcast: implied by the node map (player i sits at the
            // i-th non-root node), exactly as in `apply_relabeling`.
            let mut perm = Vec::with_capacity(inst.n.saturating_sub(1));
            for v in 0..n {
                if v == r {
                    continue;
                }
                let x = node_map[v as usize];
                perm.push(if x > r { x - 1 } else { x });
            }
            // Attachment classes must survive the reindexing.
            if !perm
                .iter()
                .enumerate()
                .all(|(i, &j)| decor.player_class[i] == decor.player_class[j as usize])
            {
                return None;
            }
            perm
        }
        None => {
            let mut buckets: HashMap<(u32, u32, u64, u32), Vec<u32>> = HashMap::new();
            for (i, &(s, t)) in inst.players.iter().enumerate() {
                let d = inst.demands.as_ref().map_or(0, |d| d[i].to_bits());
                buckets
                    .entry((s, t, d, decor.player_class[i]))
                    .or_default()
                    .push(i as u32);
            }
            let mut next: HashMap<(u32, u32, u64, u32), usize> = HashMap::new();
            let mut perm = vec![0u32; inst.players.len()];
            for (i, &(s, t)) in inst.players.iter().enumerate() {
                let d = inst.demands.as_ref().map_or(0, |d| d[i].to_bits());
                let key = (
                    node_map[s as usize],
                    node_map[t as usize],
                    d,
                    decor.player_class[i],
                );
                let ids = buckets.get(&key)?;
                let cursor = next.entry(key).or_insert(0);
                let img = *ids.get(*cursor)?;
                *cursor += 1;
                perm[i] = img;
            }
            perm
        }
    };
    Some((edge_perm, player_perm))
}

/// Orbit partition of the edge set under the generated group, by the
/// Schreier orbit algorithm (breadth-first closure of each edge id under
/// the generators): `orbits[e]` is the smallest edge id in `e`'s orbit.
/// Generators that are not permutations of `0..num_edges` are ignored.
pub fn edge_orbits(num_edges: usize, edge_gens: &[Vec<u32>]) -> Vec<u32> {
    let gens: Vec<&Vec<u32>> = edge_gens
        .iter()
        .filter(|g| g.len() == num_edges && g.iter().all(|&x| (x as usize) < num_edges))
        .collect();
    let mut orbit: Vec<u32> = (0..num_edges as u32).collect();
    let mut seen = vec![false; num_edges];
    let mut stack = Vec::new();
    for start in 0..num_edges {
        if seen[start] {
            continue;
        }
        seen[start] = true;
        stack.push(start);
        while let Some(e) = stack.pop() {
            orbit[e] = start as u32;
            for g in &gens {
                let img = g[e] as usize;
                if !std::mem::replace(&mut seen[img], true) {
                    stack.push(img);
                }
            }
        }
    }
    orbit
}

fn minmax(a: u32, b: u32) -> (u32, u32) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Per-node sorted `(key, to)` out-arc multiset — the twin-detection
/// signature.
fn arc_signatures(n: usize, arcs: &[(u32, u32, u128)]) -> Vec<Vec<(u128, u32)>> {
    let mut sigs: Vec<Vec<(u128, u32)>> = vec![Vec::new(); n];
    for &(from, to, key) in arcs {
        sigs[from as usize].push((key, to));
    }
    for s in &mut sigs {
        s.sort_unstable();
    }
    sigs
}

struct Search<'a> {
    inst: &'a Instance,
    att: &'a Attachments,
    arcs: &'a [(u32, u32, u128)],
    arc_sigs: Vec<Vec<(u128, u32)>>,
    leaves: usize,
    /// Remaining work units (refinement rounds × structure size, BFS
    /// codes, leaf serializations all debit it). Work consumption is a
    /// function of structure, so the budget trips identically on
    /// isomorphic inputs.
    work: i64,
    aborted: bool,
    /// Minimal `(leaf code, labels)` seen so far.
    best: Option<(Vec<u64>, Vec<u32>)>,
    /// Whether to record automorphism candidates (twin transpositions,
    /// equal-leaf-code label permutations). Collection never touches the
    /// work budget, so canonical results are identical either way.
    collect: bool,
    /// Unverified candidate node maps, capped at [`MAX_AUT_CANDIDATES`].
    candidates: Vec<Vec<u32>>,
}

impl Search<'_> {
    /// One budgeted refinement pass; a `None` (budget exhausted) marks
    /// the whole search aborted.
    fn refine(&mut self, seed: &[u32]) -> Option<Refinement> {
        let refined = ndg_graph::refine_partition_budgeted(
            self.inst.n,
            self.arcs,
            seed,
            REFINE_ROUNDS,
            &mut self.work,
        );
        if refined.is_none() {
            self.aborted = true;
        }
        refined
    }

    /// Debit one flat-cost operation (BFS code, leaf serialization).
    fn charge(&mut self) -> bool {
        self.work -= (self.inst.n + self.arcs.len()) as i64;
        if self.work < 0 {
            self.aborted = true;
        }
        !self.aborted
    }

    /// Explore all discrete labelings reachable from `colors` (loops over
    /// forced steps, recurses only at genuine branches, so stack depth is
    /// bounded by the leaf budget).
    fn run(&mut self, mut colors: Refinement, mut depth: usize) {
        loop {
            if self.aborted {
                return;
            }
            if colors.is_discrete() {
                self.leaves += 1;
                if self.leaves > CANON_LEAF_BUDGET || !self.charge() {
                    self.aborted = true;
                    return;
                }
                let code = leaf_code(self.inst, self.att, &colors.colors);
                if self.collect {
                    if let Some((best_code, best_labels)) = &self.best {
                        if code == *best_code && self.candidates.len() < MAX_AUT_CANDIDATES {
                            // Two labelings with byte-identical codes
                            // present the same relabeled instance:
                            // σ = best⁻¹ ∘ labels is an automorphism
                            // candidate (verified later).
                            let best_inv = invert(best_labels);
                            let sigma: Vec<u32> = colors
                                .colors
                                .iter()
                                .map(|&c| best_inv[c as usize])
                                .collect();
                            self.candidates.push(sigma);
                        }
                    }
                }
                if self.best.as_ref().is_none_or(|(b, _)| code < *b) {
                    self.best = Some((code, colors.colors));
                }
                return;
            }
            let cell = self.target_cell(&colors);
            if self.is_twin_cell(&cell) {
                if self.collect {
                    // Twin-cell members are pairwise interchangeable:
                    // each transposition with the cell head is an
                    // automorphism candidate, and together they generate
                    // the full symmetric group on the orbit.
                    for &other in &cell[1..] {
                        if self.candidates.len() >= MAX_AUT_CANDIDATES {
                            break;
                        }
                        let mut sigma: Vec<u32> = (0..self.inst.n as u32).collect();
                        sigma.swap(cell[0] as usize, other as usize);
                        self.candidates.push(sigma);
                    }
                }
                // Any ordering of a twin orbit is an automorphism image
                // of any other: individualize the whole cell at once, in
                // original-id order, without branching. The *code* is
                // unaffected by the choice; only the (per-input
                // deterministic) relabeling depends on it.
                let mut next = colors.colors;
                for (k, &v) in cell.iter().enumerate() {
                    next[v as usize] = (colors.num_colors + k) as u32;
                }
                colors = match self.refine(&next) {
                    Some(refined) => refined,
                    None => return,
                };
                depth += 1;
                continue;
            }
            // Branch: individualize each member in turn. At the first
            // branching level — the refinement-equivalent root candidates
            // — prune to the minimal-BFS-code group first.
            let mut branches: Vec<(Refinement, Vec<u64>)> = Vec::with_capacity(cell.len());
            for &v in &cell {
                let mut next = colors.colors.clone();
                next[v as usize] = colors.num_colors as u32;
                // Every branch expansion is individually budgeted: a
                // wide symmetric cell cannot multiply refinement cost
                // past the work budget.
                let Some(refined) = self.refine(&next) else {
                    return;
                };
                let code = if depth == 0 {
                    if !self.charge() {
                        return;
                    }
                    bfs_code(self.inst.n, self.arcs, &refined.colors, v)
                } else {
                    Vec::new()
                };
                branches.push((refined, code));
            }
            if depth == 0 {
                let min = branches
                    .iter()
                    .map(|(_, c)| c.clone())
                    .min()
                    .expect("non-empty cell");
                branches.retain(|(_, c)| *c == min);
            }
            for (refined, _) in branches {
                self.run(refined, depth + 1);
            }
            return;
        }
    }

    /// The smallest-colour non-singleton cell, members ascending.
    fn target_cell(&self, colors: &Refinement) -> Vec<u32> {
        let mut count = vec![0u32; colors.num_colors];
        for &c in &colors.colors {
            count[c as usize] += 1;
        }
        let target = (0..colors.num_colors as u32)
            .find(|&c| count[c as usize] > 1)
            .expect("non-discrete partition has a multi-member cell");
        (0..self.inst.n as u32)
            .filter(|&v| colors.colors[v as usize] == target)
            .collect()
    }

    /// Whether every member of `cell` has the identical keyed out-arc
    /// multiset (then the full symmetric group on the cell consists of
    /// automorphisms).
    fn is_twin_cell(&self, cell: &[u32]) -> bool {
        let first = &self.arc_sigs[cell[0] as usize];
        cell[1..]
            .iter()
            .all(|&v| &self.arc_sigs[v as usize] == first)
    }
}

/// The comparison key of a discrete labeling: the relabeled instance
/// serialized into `u64`s (dimensions, root, sorted edge triples, sorted
/// player/demand records), followed by the relabeled *attachments* —
/// edge records instead of edge ids, so the code contains no original
/// ids and isomorphic labelings of isomorphic decorated instances
/// produce identical codes. The instance section comes first, so the
/// minimal leaf always presents the canonical instance; the attachment
/// section only breaks automorphism ties.
fn leaf_code(inst: &Instance, att: &Attachments, labels: &[u32]) -> Vec<u64> {
    let mut code = instance_code(inst, labels);
    let record = |e: &EdgeId| {
        let (u, v, w) = inst.edges[e.index()];
        let (a, b) = minmax(labels[u as usize], labels[v as usize]);
        ((u64::from(a) << 32) | u64::from(b), w.to_bits())
    };
    for set in &att.edge_sets {
        let mut records: Vec<(u64, u64)> = set.iter().map(record).collect();
        records.sort_unstable();
        code.push(records.len() as u64);
        for (endpoints, w) in records {
            code.push(endpoints);
            code.push(w);
        }
    }
    for vector in &att.edge_vectors {
        let mut records: Vec<(u64, u64, u64)> = vector
            .iter()
            .enumerate()
            .map(|(e, x)| {
                let (endpoints, w) = record(&EdgeId(e as u32));
                (endpoints, w, x.to_bits())
            })
            .collect();
        records.sort_unstable();
        for (endpoints, w, x) in records {
            code.push(endpoints);
            code.push(w);
            code.push(x);
        }
    }
    for list in &att.path_lists {
        // One entry per player: her (relabeled) identity, then her path
        // as an ordered record sequence; sorted by the whole entry.
        let mut entries: Vec<Vec<u64>> = list
            .iter()
            .enumerate()
            .map(|(i, path)| {
                let mut entry = player_key(inst, labels, i);
                entry.push(path.len() as u64);
                for e in path {
                    let (endpoints, w) = record(e);
                    entry.push(endpoints);
                    entry.push(w);
                }
                entry
            })
            .collect();
        entries.sort_unstable();
        for entry in entries {
            code.push(entry.len() as u64);
            code.extend(entry);
        }
    }
    code
}

/// The label-space identity of player `i` (broadcast: her source node's
/// new id; general/weighted: endpoints and demand bits).
fn player_key(inst: &Instance, labels: &[u32], i: usize) -> Vec<u64> {
    match inst.root {
        Some(r) => {
            // Player i sits at the i-th non-root node.
            let mut v = i as u32;
            if v >= r {
                v += 1;
            }
            vec![u64::from(labels[v as usize])]
        }
        None => {
            let (s, t) = inst.players[i];
            let d = inst.demands.as_ref().map_or(0, |d| d[i].to_bits());
            vec![
                (u64::from(labels[s as usize]) << 32) | u64::from(labels[t as usize]),
                d,
            ]
        }
    }
}

/// The instance section of the leaf code.
fn instance_code(inst: &Instance, labels: &[u32]) -> Vec<u64> {
    let mut code = Vec::with_capacity(4 + 2 * inst.edges.len() + 2 * inst.players.len());
    code.push(inst.n as u64);
    code.push(match inst.root {
        Some(r) => u64::from(labels[r as usize]) + 1,
        None => 0,
    });
    code.push(inst.edges.len() as u64);
    let mut edges: Vec<(u32, u32, u64)> = inst
        .edges
        .iter()
        .map(|&(u, v, w)| {
            let (a, b) = minmax(labels[u as usize], labels[v as usize]);
            (a, b, w.to_bits())
        })
        .collect();
    edges.sort_unstable();
    for (a, b, w) in edges {
        code.push((u64::from(a) << 32) | u64::from(b));
        code.push(w);
    }
    code.push(inst.players.len() as u64);
    let mut players: Vec<(u32, u32, u64)> = inst
        .players
        .iter()
        .enumerate()
        .map(|(i, &(s, t))| {
            let d = inst.demands.as_ref().map_or(0, |d| d[i].to_bits());
            (labels[s as usize], labels[t as usize], d)
        })
        .collect();
    players.sort_unstable();
    for (s, t, d) in players {
        code.push((u64::from(s) << 32) | u64::from(t));
        code.push(d);
    }
    code
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndg_core::{player_cost, NetworkDesignGame, Player, State, SubsidyAssignment};
    use ndg_graph::{generators, kruskal, NodeId};
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn instance_of(game: &NetworkDesignGame, demands: Option<Vec<f64>>) -> Instance {
        let g = game.graph();
        Instance {
            n: g.node_count(),
            edges: g.edges().map(|(_, e)| (e.u.0, e.v.0, e.w)).collect(),
            root: game.root().map(|r| r.0),
            players: if game.root().is_some() {
                Vec::new()
            } else {
                game.players()
                    .iter()
                    .map(|p| (p.source.0, p.terminal.0))
                    .collect()
            },
            demands,
        }
    }

    fn random_perm(len: usize, rng: &mut StdRng) -> Vec<u32> {
        let mut p: Vec<u32> = (0..len as u32).collect();
        p.shuffle(rng);
        p
    }

    fn random_relabel(inst: &Instance, rng: &mut StdRng) -> (Instance, Relabeling) {
        let node = random_perm(inst.n, rng);
        let edges = random_perm(inst.edges.len(), rng);
        let players = random_perm(inst.players.len(), rng);
        let (mut out, map) = relabel(inst, &node, &edges, &players);
        // Random endpoint presentation (does not touch edge identity).
        for e in &mut out.edges {
            if rng.random_bool(0.5) {
                std::mem::swap(&mut e.0, &mut e.1);
            }
        }
        (out, map)
    }

    fn random_broadcast(rng: &mut StdRng) -> Instance {
        let game = match rng.random_range(0..4u32) {
            0 => {
                let g = generators::random_connected(rng.random_range(4..12), 0.4, rng, 0.2..4.0);
                NetworkDesignGame::broadcast(g, NodeId(0)).unwrap()
            }
            1 => {
                let g = generators::cycle_graph(rng.random_range(4..10), 1.0);
                NetworkDesignGame::broadcast(g, NodeId(rng.random_range(0..4))).unwrap()
            }
            2 => {
                let g = generators::grid_graph(2, rng.random_range(2..5), 1.0);
                NetworkDesignGame::broadcast(g, NodeId(0)).unwrap()
            }
            _ => {
                let g =
                    generators::preferential_attachment(rng.random_range(5..12), 2, rng, 0.3..3.0);
                NetworkDesignGame::broadcast(g, NodeId(0)).unwrap()
            }
        };
        instance_of(&game, None)
    }

    fn random_general(rng: &mut StdRng, weighted: bool) -> Instance {
        let n = rng.random_range(4..10);
        let g = generators::random_connected(n, 0.4, rng, 0.2..4.0);
        let mut players = Vec::new();
        let mut seen = std::collections::HashSet::new();
        while players.len() < (n / 2).max(1) {
            let s = rng.random_range(0..n as u32);
            let t = rng.random_range(0..n as u32);
            if s != t && seen.insert((s, t)) {
                players.push(Player {
                    source: NodeId(s),
                    terminal: NodeId(t),
                });
            }
        }
        let k = players.len();
        let game = NetworkDesignGame::new(g, players).unwrap();
        let demands = weighted.then(|| {
            (0..k)
                .map(|_| rng.random_range(1.0..3.0))
                .collect::<Vec<_>>()
        });
        instance_of(&game, demands)
    }

    #[test]
    fn canonical_form_is_invariant_under_relabeling() {
        let mut rng = StdRng::seed_from_u64(0xCA01);
        for round in 0..60 {
            let inst = match round % 3 {
                0 => random_broadcast(&mut rng),
                1 => random_general(&mut rng, false),
                _ => random_general(&mut rng, true),
            };
            let (canon, _) = canonicalize(&inst).expect("small instances stay in budget");
            for _ in 0..3 {
                let (relabeled, _) = random_relabel(&inst, &mut rng);
                let (canon2, _) = canonicalize(&relabeled).expect("budget");
                assert_eq!(
                    canon, canon2,
                    "round {round}: canonical forms of isomorphic instances must coincide\n\
                     base:      {inst:?}\nrelabeled: {relabeled:?}"
                );
            }
        }
    }

    #[test]
    fn canonicalization_is_idempotent() {
        let mut rng = StdRng::seed_from_u64(0xCA02);
        for round in 0..40 {
            let inst = match round % 3 {
                0 => random_broadcast(&mut rng),
                1 => random_general(&mut rng, false),
                _ => random_general(&mut rng, true),
            };
            let (canon, _) = canonicalize(&inst).expect("budget");
            let (canon2, _) = canonicalize(&canon).expect("budget");
            assert_eq!(canon, canon2, "canon(canon(G)) == canon(G): {inst:?}");
        }
    }

    #[test]
    fn relabeling_round_trips_every_payload_shape() {
        let mut rng = StdRng::seed_from_u64(0xCA03);
        for _ in 0..30 {
            let inst = random_general(&mut rng, true);
            let (_, map) = canonicalize(&inst).expect("budget");
            let m = inst.edges.len();
            let k = inst.players.len();
            let edge_set: Vec<EdgeId> = (0..m as u32)
                .filter(|_| rng.random_bool(0.5))
                .map(EdgeId)
                .collect();
            assert_eq!(
                map.unapply_edge_set(&map.apply_edge_set(&edge_set)),
                edge_set
            );
            let b: Vec<f64> = (0..m).map(|_| rng.random_range(0.0..2.0)).collect();
            assert_eq!(map.unapply_edge_values(&map.apply_edge_values(&b)), b);
            let costs: Vec<f64> = (0..k).map(|_| rng.random_range(0.0..9.0)).collect();
            assert_eq!(
                map.unapply_player_values(&map.apply_player_values(&costs)),
                costs
            );
            let paths: Vec<Vec<EdgeId>> = (0..k)
                .map(|_| {
                    (0..rng.random_range(0..4))
                        .map(|_| EdgeId(rng.random_range(0..m as u32)))
                        .collect()
                })
                .collect();
            assert_eq!(map.unapply_paths(&map.apply_paths(&paths)), paths);
            assert_eq!(map.inverse().inverse(), map);
        }
    }

    /// Costs are label-invariant *bit for bit* when states and subsidies
    /// are carried through the same relabeling: the per-edge floats move
    /// untouched and each path keeps its summation order.
    #[test]
    fn core_state_and_subsidies_map_with_bit_identical_costs() {
        let mut rng = StdRng::seed_from_u64(0xCA04);
        for _ in 0..25 {
            let n = rng.random_range(4..11);
            let g = generators::random_connected(n, 0.5, &mut rng, 0.2..4.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let inst = instance_of(&game, None);
            let tree = kruskal(game.graph()).unwrap();
            let (state, _) = State::from_tree(&game, &tree).unwrap();
            let mut b = SubsidyAssignment::zero(game.graph());
            for e in game.graph().edge_ids() {
                if rng.random_bool(0.4) {
                    let w = game.graph().weight(e);
                    b.set(game.graph(), e, w * rng.random_range(0.0..1.0));
                }
            }
            let (canon, map) = canonicalize(&inst).expect("budget");
            // Rebuild the canonical game.
            let mut cg = ndg_graph::Graph::new(canon.n);
            for &(u, v, w) in &canon.edges {
                cg.add_edge(NodeId(u), NodeId(v), w).unwrap();
            }
            let cgame = NetworkDesignGame::broadcast(cg, NodeId(canon.root.unwrap())).unwrap();
            let cstate = map.apply_state(&cgame, &state).expect("state maps");
            let cb = map.apply_subsidies(cgame.graph(), &b).expect("b maps");
            for i in 0..game.num_players() {
                let lit = player_cost(&game, &state, &b, i);
                let canon_cost = player_cost(&cgame, &cstate, &cb, map.apply_player(i));
                assert_eq!(
                    lit.to_bits(),
                    canon_cost.to_bits(),
                    "player {i}: cost must move bit-exactly through the relabeling"
                );
            }
        }
    }

    #[test]
    fn symmetric_twin_heavy_instances_stay_in_budget() {
        // A star with 40 identical leaves: one twin cell, no branching.
        let mut g = ndg_graph::Graph::new(41);
        for v in 1..41u32 {
            g.add_edge(NodeId(0), NodeId(v), 1.0).unwrap();
        }
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let inst = instance_of(&game, None);
        let (canon, _) = canonicalize(&inst).expect("twin cells must not branch");
        assert_eq!(canon.edges.len(), 40);
        // And the unit cycle (dihedral symmetry, 2-cells): in budget too.
        let game =
            NetworkDesignGame::broadcast(generators::cycle_graph(24, 1.0), NodeId(3)).unwrap();
        assert!(canonicalize(&instance_of(&game, None)).is_some());
    }

    #[test]
    fn unmappable_and_oversized_instances_fall_back() {
        // Endpoint out of range.
        let bad = Instance {
            n: 2,
            edges: vec![(0, 7, 1.0)],
            root: Some(0),
            players: Vec::new(),
            demands: None,
        };
        assert!(canonicalize(&bad).is_none());
        // Demand length mismatch.
        let bad = Instance {
            n: 3,
            edges: vec![(0, 1, 1.0), (1, 2, 1.0)],
            root: None,
            players: vec![(0, 2)],
            demands: Some(vec![1.0, 2.0]),
        };
        assert!(canonicalize(&bad).is_none());
        // Too many nodes.
        let big = Instance {
            n: CANON_MAX_NODES + 1,
            edges: Vec::new(),
            root: None,
            players: Vec::new(),
            demands: None,
        };
        assert!(canonicalize(&big).is_none());
    }

    #[test]
    fn huge_symmetric_instances_trip_the_work_budget_fast() {
        // A wire-legal 4096-node unit cycle: refinement alone needs
        // ~n/2 rounds of O(n) work to spread the root's colour, so the
        // work budget must abort it (in milliseconds, not seconds — this
        // sits on the serving path for attacker-supplied instances).
        let n = CANON_MAX_NODES;
        let game =
            NetworkDesignGame::broadcast(generators::cycle_graph(n, 1.0), NodeId(0)).unwrap();
        let inst = instance_of(&game, None);
        let t0 = std::time::Instant::now();
        assert!(canonicalize(&inst).is_none(), "must fall back to literal");
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(1),
            "fallback must be cheap, took {:?}",
            t0.elapsed()
        );
        // The automorphism path mirrors the fallback: trivial group.
        assert!(automorphisms(&inst).is_empty());
    }

    /// Every returned generator must be a genuine automorphism: a node
    /// bijection fixing the root whose induced edge map preserves
    /// endpoint structure and weight bits exactly.
    fn assert_sound_generators(inst: &Instance, gens: &AutGenerators) {
        for (g, (node, edge)) in gens.node.iter().zip(&gens.edge).enumerate() {
            let mut hit = vec![false; inst.n];
            for &x in node {
                assert!(!std::mem::replace(&mut hit[x as usize], true), "gen {g}");
            }
            if let Some(r) = inst.root {
                assert_eq!(node[r as usize], r, "gen {g} must fix the root");
            }
            let mut ehit = vec![false; inst.edges.len()];
            for (e, &img) in edge.iter().enumerate() {
                assert!(
                    !std::mem::replace(&mut ehit[img as usize], true),
                    "gen {g}: edge map not a bijection"
                );
                let (u, v, w) = inst.edges[e];
                let (a, b, _) = inst.edges[img as usize];
                let (x, y) = (node[u as usize], node[v as usize]);
                assert_eq!(
                    (x.min(y), x.max(y)),
                    (a.min(b), a.max(b)),
                    "gen {g}: edge {e} endpoints must map onto its image"
                );
                assert_eq!(
                    w.to_bits(),
                    inst.edges[img as usize].2.to_bits(),
                    "gen {g}: weight bits must be preserved"
                );
            }
        }
    }

    #[test]
    fn rooted_cycle_automorphisms_are_the_reflection() {
        // C_12 rooted at 0: Aut = {id, v ↦ −v mod 12}. The discovered
        // generators must be sound, non-empty, and their edge orbits
        // must pair each path edge with its mirror (6 orbits of 2).
        let game =
            NetworkDesignGame::broadcast(generators::cycle_graph(12, 1.0), NodeId(0)).unwrap();
        let inst = instance_of(&game, None);
        let gens = automorphisms(&inst);
        assert!(!gens.is_empty(), "the reflection must be discovered");
        assert_sound_generators(&inst, &gens);
        let orbits = edge_orbits(inst.edges.len(), &gens.edge);
        let mut sizes = std::collections::HashMap::new();
        for &o in &orbits {
            *sizes.entry(o).or_insert(0usize) += 1;
        }
        assert_eq!(sizes.len(), 6, "12 edges in 6 mirror pairs: {orbits:?}");
        assert!(sizes.values().all(|&s| s == 2), "{orbits:?}");
    }

    #[test]
    fn rooted_hypercube_automorphisms_fuse_root_edges() {
        // Q3 rooted at 0: vertex stabilizer ≅ S_3 permutes the three
        // root-incident edges transitively.
        let game =
            NetworkDesignGame::broadcast(generators::hypercube_graph(3, 1.0), NodeId(0)).unwrap();
        let inst = instance_of(&game, None);
        let gens = automorphisms(&inst);
        assert!(!gens.is_empty());
        assert_sound_generators(&inst, &gens);
        let orbits = edge_orbits(inst.edges.len(), &gens.edge);
        let root_edges: Vec<usize> = inst
            .edges
            .iter()
            .enumerate()
            .filter(|(_, &(u, v, _))| u == 0 || v == 0)
            .map(|(e, _)| e)
            .collect();
        assert_eq!(root_edges.len(), 3);
        assert!(
            root_edges
                .iter()
                .all(|&e| orbits[e] == orbits[root_edges[0]]),
            "root-incident edges must share an orbit: {orbits:?}"
        );
    }

    #[test]
    fn random_instance_generators_are_sound_and_attachment_aware() {
        let mut rng = StdRng::seed_from_u64(0xCA05);
        for round in 0..30 {
            let inst = match round % 3 {
                0 => random_broadcast(&mut rng),
                1 => random_general(&mut rng, false),
                _ => random_general(&mut rng, true),
            };
            let gens = automorphisms(&inst);
            assert_sound_generators(&inst, &gens);
        }
        // Attachments must break symmetry: subsidizing one spoke of a
        // uniform star kills the automorphisms that move it.
        let game = NetworkDesignGame::broadcast(generators::star_graph(6, 1.0), NodeId(0)).unwrap();
        let inst = instance_of(&game, None);
        let bare = automorphisms(&inst);
        assert!(!bare.is_empty(), "uniform star leaves are twins");
        let mut b = vec![0.0; inst.edges.len()];
        b[2] = 0.5;
        let att = Attachments {
            edge_vectors: vec![b],
            ..Attachments::default()
        };
        let decorated = automorphisms_with(&inst, &att);
        assert_sound_generators(&inst, &decorated);
        for edge in &decorated.edge {
            assert_eq!(edge[2], 2, "no generator may move the subsidized spoke");
        }
    }

    #[test]
    fn twin_heavy_instances_report_generators_within_the_cap() {
        // 40 identical leaves: candidates are capped but the returned
        // subgroup is still sound and non-trivial.
        let game =
            NetworkDesignGame::broadcast(generators::star_graph(41, 1.0), NodeId(0)).unwrap();
        let inst = instance_of(&game, None);
        let gens = automorphisms(&inst);
        assert!(!gens.is_empty());
        assert!(gens.len() <= 64, "candidate cap respected");
        assert_sound_generators(&inst, &gens);
        // All leaf edges collapse into one orbit under the subgroup or
        // several — either way every orbit member count sums to 40.
        let orbits = edge_orbits(inst.edges.len(), &gens.edge);
        assert_eq!(orbits.len(), 40);
    }
}
