//! The Theorem 11 lower-bound family: on unit-weight cycles, enforcing the
//! path MST requires subsidies approaching `wgt(T)/e`.
//!
//! Instance: a cycle of `n + 1` unit edges spanning the root `r` and `n`
//! player nodes; the target tree `T` is the path missing one root-incident
//! edge `a = (r, u)`. The far player `u` can always defect to `a` at cost 1,
//! so subsidies must bring her path cost `H_n` down to 1; packing on the
//! least crowded edges needs ≈ `(n+1)/e − 2` ≤ cost, and the paper's
//! analysis shows the minimum is at least `(1/e − ε)·wgt(T)` for large `n`.

use crate::{SneError, SneSolution};
use ndg_core::NetworkDesignGame;
use ndg_graph::{generators, EdgeId, NodeId};

/// The Theorem 11 instance: `(game, target tree)` for `n ≥ 2` players.
///
/// Node 0 is the root; edges `0..n` form the tree path `0−1−…−n` and edge
/// `n` (id `n`) is the closing chord `(n, 0)` excluded from the tree.
pub fn cycle_instance(n: usize) -> (NetworkDesignGame, Vec<EdgeId>) {
    assert!(n >= 2, "the instance needs at least 2 players");
    let g = generators::cycle_graph(n + 1, 1.0);
    let game = NetworkDesignGame::broadcast(g, NodeId(0)).expect("cycle is connected");
    let tree: Vec<EdgeId> = (0..n as u32).map(EdgeId).collect();
    (game, tree)
}

/// Analytic lower bound from the paper's proof: `(n+1)/e − 2`.
pub fn analytic_lower_bound(n: usize) -> f64 {
    (n as f64 + 1.0) / std::f64::consts::E - 2.0
}

/// Exact minimum subsidy for the instance, via LP (3).
pub fn exact_min_subsidy(n: usize) -> Result<SneSolution, SneError> {
    let (game, tree) = cycle_instance(n);
    crate::lp_broadcast::enforce_tree_lp(&game, &tree)
}

/// The measured ratio `min-subsidy / wgt(T)`; converges to `1/e` from
/// below as `n` grows.
pub fn measured_ratio(n: usize) -> Result<f64, SneError> {
    let sol = exact_min_subsidy(n)?;
    Ok(sol.cost / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndg_core::is_tree_equilibrium;
    use ndg_graph::RootedTree;
    use std::f64::consts::E;

    #[test]
    fn exact_minimum_between_analytic_bound_and_one_over_e() {
        for n in [4usize, 8, 16, 32] {
            let sol = exact_min_subsidy(n).unwrap();
            let lower = analytic_lower_bound(n);
            let upper = n as f64 / E; // Theorem 6
            assert!(
                sol.cost >= lower - 1e-6,
                "n={n}: cost {} below analytic bound {lower}",
                sol.cost
            );
            assert!(
                sol.cost <= upper + 1e-6,
                "n={n}: cost {} above wgt/e {upper}",
                sol.cost
            );
        }
    }

    #[test]
    fn ratio_converges_to_one_over_e() {
        let r16 = measured_ratio(16).unwrap();
        let r48 = measured_ratio(48).unwrap();
        let target = 1.0 / E;
        assert!(
            (r48 - target).abs() < (r16 - target).abs() + 1e-9,
            "ratio must approach 1/e: r16={r16}, r48={r48}"
        );
        assert!((r48 - target).abs() < 0.03, "r48={r48} too far from 1/e");
    }

    #[test]
    fn solution_certified_and_theorem6_comparable() {
        let n = 12;
        let (game, tree) = cycle_instance(n);
        let lp = exact_min_subsidy(n).unwrap();
        let rt = RootedTree::new(game.graph(), &tree, NodeId(0)).unwrap();
        assert!(is_tree_equilibrium(&game, &rt, &lp.subsidies));
        let t6 = crate::theorem6::enforce(&game, &tree).unwrap();
        assert!(lp.cost <= t6.cost + 1e-6);
        assert!(t6.cost <= n as f64 / E + 1e-9);
    }
}
