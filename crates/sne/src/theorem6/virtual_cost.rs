//! The virtual cost function of Theorem 6.
//!
//! For a heavy edge `a` of a `{0, c}`-weighted layer carrying `m_a` heavy
//! players and subsidy `y ∈ [0, c]`:
//!
//! ```text
//!   vc(a, y) = c · ln( m_a / (m_a − 1 + y/c) )
//! ```
//!
//! Claim 8 shows `vc(a, y) ≥ (c − y)/n_a(T)`, so virtual path costs
//! upper-bound real player costs; Claim 10 shows that packing subsidies on
//! the least-crowded heavy edges of a path with consecutive `m` values
//! gives path virtual cost `c · ln(t / (t − |q'| + y(q)/c))`.

/// `vc(a, y)` for a heavy edge of layer weight `c` with `m ≥ 1` heavy users
/// and subsidy `y ∈ [0, c]`. Infinite when `m = 1` and `y = 0`.
pub fn virtual_cost(c: f64, m: u32, y: f64) -> f64 {
    debug_assert!(m >= 1, "a heavy edge always carries its child player");
    debug_assert!(c > 0.0);
    debug_assert!(
        (-1e-12..=c + 1e-9).contains(&y),
        "subsidy {y} outside [0, {c}]"
    );
    let den = m as f64 - 1.0 + (y / c).max(0.0);
    if den <= 0.0 {
        f64::INFINITY
    } else {
        c * (m as f64 / den).ln()
    }
}

/// The partial subsidy placed on the cut edge `a ∈ S` (Theorem 6): the
/// `b_a` solving `vc(a, b_a) = c − ℓ` where `ℓ = vc(T_{p(v)}, 0)` is the
/// virtual cost already accumulated above `a`:
///
/// ```text
///   b_a = c · ( 1 − m_a (1 − e^{ℓ/c − 1}) )
/// ```
///
/// Clamped into `[0, c]` for numerical safety.
pub fn cut_edge_subsidy(c: f64, m: u32, ell: f64) -> f64 {
    debug_assert!(ell >= -1e-12 && ell <= c + 1e-9);
    let b = c * (1.0 - m as f64 * (1.0 - (ell / c - 1.0).exp()));
    b.clamp(0.0, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_values() {
        // m = 1, y = 0: infinite.
        assert!(virtual_cost(1.0, 1, 0.0).is_infinite());
        // m = 1, y = c: vc = c ln(1/1) = 0? No: m−1+1 = 1 ⇒ ln 1 = 0.
        assert_eq!(virtual_cost(2.0, 1, 2.0), 0.0);
        // m = 2, y = 0: c ln 2.
        assert!((virtual_cost(3.0, 2, 0.0) - 3.0 * 2.0f64.ln()).abs() < 1e-12);
        // Fully subsidized edges contribute nothing.
        for m in 1..6 {
            assert!(virtual_cost(1.5, m, 1.5).abs() < 1e-12);
        }
    }

    #[test]
    fn decreasing_in_subsidy() {
        let c = 2.0;
        for m in 1..6u32 {
            let mut prev = virtual_cost(c, m, 0.0);
            for k in 1..=10 {
                let y = c * k as f64 / 10.0;
                let cur = virtual_cost(c, m, y);
                assert!(cur <= prev + 1e-12, "vc must decrease in y");
                prev = cur;
            }
        }
    }

    /// Claim 8: `vc(a, y) ≥ (c − y)/n` for every `n ≥ m`.
    #[test]
    fn claim_8_bound() {
        let c = 1.7;
        for m in 1..10u32 {
            for n in m..15u32 {
                for k in 0..=20 {
                    let y = c * k as f64 / 20.0;
                    let vc = virtual_cost(c, m, y);
                    let real = (c - y) / n as f64;
                    assert!(
                        vc >= real - 1e-12,
                        "claim 8 fails: vc({m},{y})={vc} < {real} (n={n})"
                    );
                }
            }
        }
    }

    /// Claim 10 (no-subsidy case): with `m` values `t−k+1 … t` on a path of
    /// `k` heavy edges, `Σ vc(a, 0) = c ln(t/(t−k))`.
    #[test]
    fn claim_10_telescoping() {
        let c = 2.5;
        for t in 2..12u32 {
            for k in 1..t {
                let sum: f64 = ((t - k + 1)..=t).map(|m| virtual_cost(c, m, 0.0)).sum();
                let closed = c * (t as f64 / (t - k) as f64).ln();
                assert!(
                    (sum - closed).abs() < 1e-10,
                    "t={t},k={k}: {sum} vs {closed}"
                );
            }
        }
    }

    /// Claim 10 (packed-subsidy case): packing `y(q)` on least-crowded
    /// edges of a consecutive-m path gives `c ln(t/(t−k+y/c))`.
    #[test]
    fn claim_10_with_packed_subsidies() {
        let c = 1.0;
        let t = 6u32;
        let k = 6u32; // m values 1..6
                      // Pack y = 1.6c: full subsidy on m=1 and 0.6c on m=2 (Figure 4).
        let y_total = 1.6;
        let mut sum = 0.0;
        for m in 1..=t {
            let y = if m == 1 {
                c
            } else if m == 2 {
                0.6 * c
            } else {
                0.0
            };
            sum += virtual_cost(c, m, y);
        }
        let closed = c * (t as f64 / (t as f64 - k as f64 + y_total / c)).ln();
        assert!((sum - closed).abs() < 1e-10, "{sum} vs {closed}");
        // Figure 4's value: ln(6/1.6).
        assert!((sum - (6.0f64 / 1.6).ln()).abs() < 1e-10);
    }

    #[test]
    fn cut_edge_subsidy_solves_the_equation() {
        let c = 2.0;
        for m in 1..8u32 {
            for j in 0..10 {
                let ell = c * j as f64 / 10.0;
                let b = cut_edge_subsidy(c, m, ell);
                if b > 0.0 && b < c {
                    // Interior solution: vc(a, b) must equal c − ℓ.
                    let vc = virtual_cost(c, m, b);
                    assert!(
                        (vc - (c - ell)).abs() < 1e-9,
                        "m={m}, ℓ={ell}: vc={vc} != {}",
                        c - ell
                    );
                }
            }
        }
    }

    #[test]
    fn cut_edge_subsidy_known_values() {
        // m = 1, ℓ = 0: b = c/e (the single-heavy-edge star case).
        let c = 3.0;
        assert!((cut_edge_subsidy(c, 1, 0.0) - c / std::f64::consts::E).abs() < 1e-12);
        // ℓ = c: the remaining virtual budget is 0, so the edge must be
        // fully subsidized (vc(a, c) = 0) for every m.
        for m in 1..6 {
            assert!((cut_edge_subsidy(c, m, c) - c).abs() < 1e-9);
        }
    }
}
