//! Theorem 6: enforcing an MST with subsidies of cost at most `wgt(T)/e`.
//!
//! The algorithm follows the constructive proof exactly:
//!
//! 1. [`decompose()`](decompose()) the graph into `{0, c_j}` weight layers; the target MST
//!    is an MST of every layer.
//! 2. Within each layer, walk the tree from the root accumulating the
//!    *virtual cost* `vc(a, 0) = c·ln(m_a/(m_a−1))` of unsubsidized heavy
//!    edges (`m_a` = heavy players through `a`). The cut set `S` consists
//!    of the first heavy edges where the accumulated virtual cost would
//!    reach `c`; they receive the partial subsidy of
//!    [`virtual_cost::cut_edge_subsidy`], and every heavy edge *below* the
//!    cut is fully subsidized. Every root path then has virtual cost ≤ `c`,
//!    which upper-bounds the real player cost (Claim 8), while any
//!    deviation must either buy a heavy non-tree edge alone (cost ≥ `c`) or
//!    use only zero-weight layer edges (cost unchanged, by the MST cycle
//!    property).
//! 3. Sum the per-layer subsidies edge-wise.
//!
//! The combined assignment is re-verified with the independent Lemma 2
//! checker before being returned, and its cost is certified
//! `≤ wgt(T)/e` in tests (exactly `wgt(Tʲ)/e` per layer when every root
//! path crosses the cut, less otherwise).

pub mod decompose;
pub mod packing;
pub mod virtual_cost;

pub use decompose::{decompose, reconstructed_weight, Layer};
pub use packing::{min_subsidy_to_cap_cost, PackingStrategy};
pub use virtual_cost::{cut_edge_subsidy, virtual_cost};

use crate::{SneError, SneSolution};
use ndg_core::{NetworkDesignGame, SubsidyAssignment};
use ndg_graph::{EdgeId, Graph, RootedTree};

/// Run the Theorem 6 algorithm on a broadcast game and a spanning tree
/// (intended to be an MST — the `wgt/e` guarantee and the equilibrium
/// certificate both rely on it). Returns the certified enforcing subsidies.
pub fn enforce(game: &NetworkDesignGame, tree: &[EdgeId]) -> Result<SneSolution, SneError> {
    let b = subsidies_unverified(game, tree)?;
    crate::certified(game, tree, b)
}

/// The raw Theorem 6 assignment without the final equilibrium gate
/// (used by the ablations, which intentionally feed non-MST inputs).
pub fn subsidies_unverified(
    game: &NetworkDesignGame,
    tree: &[EdgeId],
) -> Result<SubsidyAssignment, SneError> {
    let root = game.root().ok_or(SneError::NotBroadcast)?;
    let g = game.graph();
    let rt = RootedTree::new(g, tree, root).map_err(|_| SneError::NotASpanningTree)?;

    let mut acc = vec![0.0f64; g.edge_count()];
    for layer in decompose(g) {
        let layer_b = layer_subsidies(g, &rt, &layer);
        for (e, b) in layer_b {
            acc[e.index()] += b;
        }
    }
    SubsidyAssignment::new(g, acc).map_err(|_| SneError::VerificationFailed)
}

/// A2 ablation: skip the layer decomposition and run the packing once with
/// `c = max edge weight`, treating every positive-weight edge as heavy.
/// Per-edge subsidies are clamped at the true weights, which breaks the
/// virtual-cost argument on multi-weight graphs — exactly the failure the
/// ablation demonstrates.
pub fn subsidies_single_layer(
    game: &NetworkDesignGame,
    tree: &[EdgeId],
) -> Result<SubsidyAssignment, SneError> {
    let root = game.root().ok_or(SneError::NotBroadcast)?;
    let g = game.graph();
    let rt = RootedTree::new(g, tree, root).map_err(|_| SneError::NotASpanningTree)?;
    let c = g.edges().map(|(_, e)| e.w).fold(0.0f64, f64::max);
    if c <= 0.0 {
        return Ok(SubsidyAssignment::zero(g));
    }
    let layer = Layer {
        c,
        threshold: c,
        heavy: g.edges().map(|(_, e)| e.w > 1e-12).collect(),
    };
    let mut acc = vec![0.0f64; g.edge_count()];
    for (e, b) in layer_subsidies(g, &rt, &layer) {
        // Clamp to the edge's actual weight (the single layer pretends
        // every heavy edge weighs `c`).
        acc[e.index()] = b.min(g.weight(e));
    }
    SubsidyAssignment::new(g, acc).map_err(|_| SneError::VerificationFailed)
}

/// Per-layer subsidy computation: returns `(tree edge, subsidy)` pairs.
fn layer_subsidies(g: &Graph, rt: &RootedTree, layer: &Layer) -> Vec<(EdgeId, f64)> {
    let c = layer.c;
    let n = g.node_count();

    // m[v] = heavy players in the subtree of v (a node is a heavy player
    // iff its parent edge is heavy in this layer).
    let mut m = vec![0u32; n];
    for &v in rt.preorder().iter().rev() {
        if let Some((p, e)) = rt.parent(v) {
            if layer.heavy[e.index()] {
                m[v.index()] += 1;
            }
            m[p.index()] += m[v.index()];
        }
    }

    // Root-down walk with accumulated virtual cost ℓ.
    let mut out = Vec::new();
    let mut stack: Vec<(ndg_graph::NodeId, f64)> = vec![(rt.root(), 0.0)];
    while let Some((u, ell)) = stack.pop() {
        for &v in rt.children(u) {
            let a = rt.parent_edge(v).expect("children have parent edges");
            if !layer.heavy[a.index()] {
                stack.push((v, ell));
                continue;
            }
            if ell >= c * (1.0 - 1e-12) {
                // Below the cut: fully subsidized.
                out.push((a, c));
                stack.push((v, ell));
                continue;
            }
            let m_a = m[v.index()];
            debug_assert!(m_a >= 1, "heavy edge must carry its child player");
            let vc0 = virtual_cost(c, m_a, 0.0);
            if ell + vc0 < c - 1e-12 {
                // Above the cut: no subsidy, accumulate virtual cost.
                stack.push((v, ell + vc0));
            } else {
                // Cut edge a ∈ S: partial subsidy making the path's virtual
                // cost exactly c.
                let b = cut_edge_subsidy(c, m_a, ell);
                out.push((a, b));
                stack.push((v, c));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndg_core::is_tree_equilibrium;
    use ndg_graph::{generators, kruskal, NodeId};
    use std::f64::consts::E;

    fn broadcast(g: Graph) -> NetworkDesignGame {
        NetworkDesignGame::broadcast(g, NodeId(0)).unwrap()
    }

    #[test]
    fn star_gets_exactly_weight_over_e() {
        // k unit spokes from the root, plus chords making deviations
        // possible... with no chords the bound is still respected; each
        // spoke is its own heavy path with m = 1 ⇒ subsidy c/e each.
        let g = generators::star_graph(6, 1.0);
        let game = broadcast(g);
        let tree: Vec<EdgeId> = game.graph().edge_ids().collect();
        let sol = enforce(&game, &tree).unwrap();
        let want = 5.0 / E;
        assert!((sol.cost - want).abs() < 1e-9, "{} vs {want}", sol.cost);
    }

    #[test]
    fn chain_cost_matches_closed_form() {
        // Path 0-1-…-n from the root: one heavy path with m values n..1;
        // Claim 10 ⇒ subsidies make the total exactly n/e when the cut is
        // crossed; always ≤ n/e.
        for n in 2..30usize {
            let g = generators::path_graph(n + 1, 1.0);
            let game = broadcast(g);
            let tree: Vec<EdgeId> = game.graph().edge_ids().collect();
            let sol = enforce(&game, &tree).unwrap();
            let bound = n as f64 / E;
            assert!(
                sol.cost <= bound + 1e-9,
                "n={n}: cost {} > bound {bound}",
                sol.cost
            );
        }
    }

    #[test]
    fn bound_and_equilibrium_on_random_graphs() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(71);
        for _ in 0..25 {
            let n = rng.random_range(3..25usize);
            let g = generators::random_connected(n, 0.4, &mut rng, 0.0..5.0);
            let game = broadcast(g);
            let tree = kruskal(game.graph()).unwrap();
            let sol = enforce(&game, &tree).expect("theorem 6 must succeed on MSTs");
            let bound = game.graph().weight_of(&tree) / E;
            assert!(
                sol.cost <= bound + 1e-7,
                "cost {} exceeds wgt/e = {bound}",
                sol.cost
            );
            let rt = RootedTree::new(game.graph(), &tree, NodeId(0)).unwrap();
            assert!(is_tree_equilibrium(&game, &rt, &sol.subsidies));
        }
    }

    #[test]
    fn lp_optimum_never_exceeds_theorem6() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(73);
        for _ in 0..10 {
            let n = rng.random_range(3..10usize);
            let g = generators::random_connected(n, 0.5, &mut rng, 0.2..3.0);
            let game = broadcast(g);
            let tree = kruskal(game.graph()).unwrap();
            let t6 = enforce(&game, &tree).unwrap();
            let lp = crate::lp_broadcast::enforce_tree_lp(&game, &tree).unwrap();
            assert!(
                lp.cost <= t6.cost + 1e-6,
                "LP optimum {} > theorem-6 cost {}",
                lp.cost,
                t6.cost
            );
        }
    }

    #[test]
    fn zero_weight_graph_needs_nothing() {
        let mut g = Graph::new(4);
        for i in 0..3u32 {
            g.add_edge(NodeId(i), NodeId(i + 1), 0.0).unwrap();
        }
        g.add_edge(NodeId(3), NodeId(0), 0.0).unwrap();
        let game = broadcast(g);
        let tree: Vec<EdgeId> = (0..3).map(EdgeId).collect();
        let sol = enforce(&game, &tree).unwrap();
        assert_eq!(sol.cost, 0.0);
    }

    #[test]
    fn multi_weight_layering_respects_bound() {
        // Weights spanning several levels to exercise the decomposition.
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(79);
        for _ in 0..10 {
            let n = rng.random_range(4..15usize);
            let mut g = generators::random_connected(n, 0.5, &mut rng, 0.0..1.0);
            // Quantize weights into a handful of levels (stress dedup).
            let levels = [0.0, 0.5, 1.0, 2.0, 4.0];
            let quantized: Vec<(NodeId, NodeId, f64)> = g
                .edges()
                .map(|(_, e)| (e.u, e.v, levels[rng.random_range(0..levels.len())]))
                .collect();
            let mut g2 = Graph::new(n);
            for (u, v, w) in quantized {
                g2.add_edge(u, v, w).unwrap();
            }
            if !g2.is_connected() {
                continue;
            }
            g = g2;
            let game = broadcast(g);
            let tree = kruskal(game.graph()).unwrap();
            let sol = enforce(&game, &tree).unwrap();
            let bound = game.graph().weight_of(&tree) / E;
            assert!(sol.cost <= bound + 1e-7);
        }
    }

    #[test]
    fn single_layer_ablation_overpays_or_fails_on_multiweight() {
        // A path with one cheap and one expensive edge; the single-layer
        // variant treats both as weight-c heavy edges and misplaces the
        // cut. It must never beat the layered algorithm.
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 4.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 4.0).unwrap();
        g.add_edge(NodeId(3), NodeId(0), 9.0).unwrap();
        let game = broadcast(g);
        let tree: Vec<EdgeId> = (0..3).map(EdgeId).collect();
        let layered = enforce(&game, &tree).unwrap();
        let single = subsidies_single_layer(&game, &tree).unwrap();
        let rt = RootedTree::new(game.graph(), &tree, NodeId(0)).unwrap();
        let single_ok = is_tree_equilibrium(&game, &rt, &single);
        assert!(
            !single_ok || single.cost() >= layered.cost - 1e-9,
            "single-layer should not beat the layered algorithm"
        );
    }

    #[test]
    fn non_tree_and_non_broadcast_rejected() {
        let g = generators::cycle_graph(4, 1.0);
        let game = broadcast(g.clone());
        assert!(matches!(
            enforce(&game, &[EdgeId(0)]),
            Err(SneError::NotASpanningTree)
        ));
        let general = NetworkDesignGame::new(
            g,
            vec![ndg_core::Player {
                source: NodeId(0),
                terminal: NodeId(2),
            }],
        )
        .unwrap();
        assert!(matches!(
            enforce(&general, &[EdgeId(0), EdgeId(1), EdgeId(2)]),
            Err(SneError::NotBroadcast)
        ));
    }

    use ndg_graph::{Graph, RootedTree};
}
