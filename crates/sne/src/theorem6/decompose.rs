//! Weight-layer decomposition (first key idea of Theorem 6).
//!
//! A graph `G` is decomposed into copies `G¹ … Gᵏ` with edge weights in
//! `{0, c_j}`: `c₁` is the minimum nonzero weight; subtract it from every
//! nonzero edge and recurse. Equivalently, with distinct nonzero weights
//! `t₁ < t₂ < … < t_k`, layer `j` has `c_j = t_j − t_{j−1}` and an edge is
//! *heavy* in layer `j` iff its original weight is `≥ t_j`. Two invariants
//! the proof uses, both machine-checked in the tests:
//!
//! 1. weights reconstruct: `w_a = Σ_j c_j · heavy_j(a)`;
//! 2. if an edge is heavy in layer `j` it is heavy in all layers `< j`,
//!    and any MST of `G` is an MST of every layer graph `Gʲ`.

use ndg_graph::{EdgeId, Graph};

/// Weight-equality tolerance when collecting distinct weight levels.
const LEVEL_TOL: f64 = 1e-12;

/// One `{0, c}` layer of the decomposition.
#[derive(Clone, Debug)]
pub struct Layer {
    /// The layer's uniform nonzero weight `c_j > 0`.
    pub c: f64,
    /// The cumulative threshold `t_j`: heavy ⟺ `w_a ≥ t_j`.
    pub threshold: f64,
    /// Per-edge heaviness in this layer.
    pub heavy: Vec<bool>,
}

impl Layer {
    /// Weight of edge `e` in this layer (`c` or `0`).
    #[inline]
    pub fn weight(&self, e: EdgeId) -> f64 {
        if self.heavy[e.index()] {
            self.c
        } else {
            0.0
        }
    }

    /// The layer copy `Gʲ` as an explicit graph (same topology, `{0, c}`
    /// weights). Mostly for tests and the A2 ablation.
    pub fn layer_graph(&self, g: &Graph) -> Graph {
        let mut out = Graph::new(g.node_count());
        for (e, edge) in g.edges() {
            out.add_edge(edge.u, edge.v, self.weight(e))
                .expect("copying a valid edge");
        }
        out
    }
}

/// Decompose `g` into layers. Zero-weight graphs yield no layers.
pub fn decompose(g: &Graph) -> Vec<Layer> {
    let mut levels: Vec<f64> = g
        .edges()
        .map(|(_, e)| e.w)
        .filter(|&w| w > LEVEL_TOL)
        .collect();
    levels.sort_by(f64::total_cmp);
    levels.dedup_by(|a, b| (*a - *b).abs() <= LEVEL_TOL);

    let mut layers = Vec::with_capacity(levels.len());
    let mut prev = 0.0f64;
    for &t in &levels {
        let heavy: Vec<bool> = g.edges().map(|(_, e)| e.w >= t - LEVEL_TOL).collect();
        layers.push(Layer {
            c: t - prev,
            threshold: t,
            heavy,
        });
        prev = t;
    }
    layers
}

/// Reconstructed weight of `e` from the layers (must equal `w_e`).
pub fn reconstructed_weight(layers: &[Layer], e: EdgeId) -> f64 {
    layers.iter().map(|l| l.weight(e)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndg_graph::{generators, kruskal, mst_weight, NodeId};
    use rand::prelude::*;

    #[test]
    fn uniform_graph_one_layer() {
        let g = generators::cycle_graph(5, 2.5);
        let layers = decompose(&g);
        assert_eq!(layers.len(), 1);
        assert_eq!(layers[0].c, 2.5);
        assert!(layers[0].heavy.iter().all(|&h| h));
    }

    #[test]
    fn zero_graph_no_layers() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 0.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 0.0).unwrap();
        assert!(decompose(&g).is_empty());
    }

    #[test]
    fn explicit_three_level_example() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap(); // e0
        g.add_edge(NodeId(1), NodeId(2), 3.0).unwrap(); // e1
        g.add_edge(NodeId(2), NodeId(3), 4.0).unwrap(); // e2
        g.add_edge(NodeId(3), NodeId(0), 0.0).unwrap(); // e3
        let layers = decompose(&g);
        assert_eq!(layers.len(), 3);
        assert_eq!(layers[0].c, 1.0); // level 1: e0, e1, e2 heavy
        assert_eq!(layers[1].c, 2.0); // level 3: e1, e2 heavy
        assert_eq!(layers[2].c, 1.0); // level 4: e2 heavy
        assert_eq!(layers[0].heavy, vec![true, true, true, false]);
        assert_eq!(layers[1].heavy, vec![false, true, true, false]);
        assert_eq!(layers[2].heavy, vec![false, false, true, false]);
    }

    #[test]
    fn weights_reconstruct_randomized() {
        let mut rng = StdRng::seed_from_u64(61);
        for _ in 0..20 {
            let n = rng.random_range(2..15);
            let g = generators::random_connected(n, 0.4, &mut rng, 0.0..5.0);
            let layers = decompose(&g);
            for e in g.edge_ids() {
                assert!(
                    (reconstructed_weight(&layers, e) - g.weight(e)).abs() < 1e-9,
                    "edge {e:?} fails reconstruction"
                );
            }
            // Monotone heaviness: heavy in layer j ⇒ heavy in all earlier.
            for e in g.edge_ids() {
                let mut was_light = false;
                for l in &layers {
                    if !l.heavy[e.index()] {
                        was_light = true;
                    } else {
                        assert!(!was_light, "heaviness must be monotone across layers");
                    }
                }
            }
        }
    }

    /// The proof's per-layer MST lemma: an MST of `G` (same edge set) is an
    /// MST of every layer graph `Gʲ`.
    #[test]
    fn mst_survives_per_layer() {
        let mut rng = StdRng::seed_from_u64(62);
        for _ in 0..20 {
            let n = rng.random_range(2..12);
            let g = generators::random_connected(n, 0.5, &mut rng, 0.0..4.0);
            let tree = kruskal(&g).unwrap();
            for layer in decompose(&g) {
                let lg = layer.layer_graph(&g);
                let tree_layer_weight: f64 = tree.iter().map(|&e| layer.weight(e)).sum();
                let opt = mst_weight(&lg).unwrap();
                assert!(
                    (tree_layer_weight - opt).abs() < 1e-9,
                    "tree is not an MST of the layer graph: {tree_layer_weight} vs {opt}"
                );
            }
        }
    }

    use ndg_graph::Graph;
}
