//! Subsidy packing strategies on a single path (the A1 ablation).
//!
//! The Theorem 11 analysis observes that to drop a path player's cost below
//! a cap with minimum subsidies, subsidies must be *packed on the least
//! crowded edges*: one unit of subsidy on an edge shared by `u` players
//! only reduces the player's cost by `1/u`, so low-usage (far-from-root)
//! edges give the most cost reduction per subsidy unit. This module
//! implements that packing plus two deliberately worse strategies
//! (most-crowded packing, uniform spreading) that the A1 ablation bench
//! compares.

/// How to distribute subsidies along a path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PackingStrategy {
    /// Fill edges in increasing order of usage — the paper's choice.
    LeastCrowded,
    /// Fill edges in decreasing order of usage (worst case).
    MostCrowded,
    /// Scale all subsidies by one common factor `λ`.
    Uniform,
}

/// Minimum total subsidy (under `strategy`) so that a player paying
/// `Σ (w_i − b_i)/u_i` over edges with weights `w` and usages `u` pays at
/// most `cap`. Returns `None` if even full subsidies leave the cost above
/// `cap` (i.e. `cap < 0`).
pub fn min_subsidy_to_cap_cost(
    usages: &[u32],
    weights: &[f64],
    cap: f64,
    strategy: PackingStrategy,
) -> Option<f64> {
    assert_eq!(usages.len(), weights.len());
    let base_cost: f64 = weights.iter().zip(usages).map(|(w, &u)| w / u as f64).sum();
    if base_cost <= cap + 1e-12 {
        return Some(0.0);
    }
    if cap < -1e-12 {
        return None;
    }
    match strategy {
        PackingStrategy::Uniform => {
            // b_i = λ w_i: (1 − λ) base ≤ cap ⇒ λ = 1 − cap/base.
            let lambda = (1.0 - cap / base_cost).clamp(0.0, 1.0);
            Some(lambda * weights.iter().sum::<f64>())
        }
        PackingStrategy::LeastCrowded | PackingStrategy::MostCrowded => {
            let mut order: Vec<usize> = (0..usages.len()).collect();
            match strategy {
                PackingStrategy::LeastCrowded => order.sort_by_key(|&i| usages[i]),
                PackingStrategy::MostCrowded => {
                    order.sort_by_key(|&i| std::cmp::Reverse(usages[i]))
                }
                PackingStrategy::Uniform => unreachable!(),
            }
            let mut need = base_cost - cap; // cost reduction still required
            let mut total = 0.0f64;
            for &i in &order {
                if need <= 1e-12 {
                    break;
                }
                let u = usages[i] as f64;
                let full_reduction = weights[i] / u;
                if full_reduction <= need + 1e-15 {
                    total += weights[i];
                    need -= full_reduction;
                } else {
                    // Partial subsidy: reduce by exactly `need`.
                    total += need * u;
                    need = 0.0;
                }
            }
            if need > 1e-9 {
                None // cannot reach the cap even fully subsidized
            } else {
                Some(total)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Theorem 11 setting: unit path with usages n, n−1, …, 1; cap = 1.
    fn theorem11_instance(n: usize) -> (Vec<u32>, Vec<f64>) {
        let usages: Vec<u32> = (1..=n as u32).rev().collect();
        let weights = vec![1.0; n];
        (usages, weights)
    }

    #[test]
    fn least_crowded_beats_others_on_cycle_instance() {
        for n in [5usize, 10, 25, 50] {
            let (u, w) = theorem11_instance(n);
            let least = min_subsidy_to_cap_cost(&u, &w, 1.0, PackingStrategy::LeastCrowded)
                .expect("feasible");
            let most = min_subsidy_to_cap_cost(&u, &w, 1.0, PackingStrategy::MostCrowded)
                .expect("feasible");
            let unif =
                min_subsidy_to_cap_cost(&u, &w, 1.0, PackingStrategy::Uniform).expect("feasible");
            assert!(least <= most + 1e-9, "least {least} > most {most} (n={n})");
            assert!(
                least <= unif + 1e-9,
                "least {least} > uniform {unif} (n={n})"
            );
            if n >= 10 {
                assert!(least < most - 0.5, "gap should be large at n={n}");
            }
        }
    }

    #[test]
    fn least_crowded_ratio_tends_to_one_over_e() {
        // Theorem 11: minimal subsidies / n → 1/e.
        let n = 20_000;
        let (u, w) = theorem11_instance(n);
        let least = min_subsidy_to_cap_cost(&u, &w, 1.0, PackingStrategy::LeastCrowded).unwrap();
        let ratio = least / n as f64;
        assert!(
            (ratio - 1.0 / std::f64::consts::E).abs() < 1e-3,
            "ratio {ratio}"
        );
    }

    #[test]
    fn zero_needed_when_under_cap() {
        let got = min_subsidy_to_cap_cost(&[2, 3], &[0.5, 0.5], 2.0, PackingStrategy::LeastCrowded);
        assert_eq!(got, Some(0.0));
    }

    #[test]
    fn infeasible_cap_detected() {
        assert_eq!(
            min_subsidy_to_cap_cost(&[1], &[1.0], -1.0, PackingStrategy::LeastCrowded),
            None
        );
    }

    #[test]
    fn exact_small_case() {
        // Usages [3, 1], weights [1, 1], cap 0.5: base = 1/3 + 1 = 4/3.
        // Least crowded: subsidize the u=1 edge fully (reduces 1) →
        // remaining 1/3 > 0.5? No: 4/3 − 1 = 1/3 ≤ 0.5 after reduction of 1.
        // Need = 4/3 − 1/2 = 5/6; full e(u=1) gives 1 ≥ 5/6 ⇒ partial:
        // b = 5/6 · 1 = 5/6.
        let got = min_subsidy_to_cap_cost(&[3, 1], &[1.0, 1.0], 0.5, PackingStrategy::LeastCrowded)
            .unwrap();
        assert!((got - 5.0 / 6.0).abs() < 1e-12, "{got}");
        // Most crowded: subsidize u=3 edge fully (reduces 1/3), then the
        // u=1 edge partially by 1/2: total = 1 + 1/2.
        let worst =
            min_subsidy_to_cap_cost(&[3, 1], &[1.0, 1.0], 0.5, PackingStrategy::MostCrowded)
                .unwrap();
        assert!((worst - 1.5).abs() < 1e-12, "{worst}");
    }

    #[test]
    fn uniform_formula() {
        // base = 2, cap = 1 ⇒ λ = 1/2 ⇒ total = half the weight.
        let got =
            min_subsidy_to_cap_cost(&[1, 1], &[1.0, 1.0], 1.0, PackingStrategy::Uniform).unwrap();
        assert!((got - 1.0).abs() < 1e-12);
    }
}
