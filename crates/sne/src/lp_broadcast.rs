//! LP (3): the simple broadcast-game enforcement LP.
//!
//! Variables: one subsidy `b_a ∈ [0, w_a]` per tree edge (subsidies off the
//! tree can only make deviations cheaper, so they are fixed at 0). One
//! constraint per ordered non-tree adjacency `(u, v)` with `u ≠ r`:
//!
//! ```text
//!   Σ_{a∈T_u} (w_a−b_a)/n_a(T)  ≤  w_(u,v) + Σ_{a∈T_v} (w_a−b_a)/(n_a(T)+1−n_a^u(T))
//! ```
//!
//! Lemma 2 proves feasibility of this LP is *equivalent* to `T` being an
//! equilibrium of the extension, so its optimum is the exact minimum
//! subsidy cost. The solution is re-verified with the independent Lemma 2
//! checker before being returned.

use crate::{SneError, SneSolution};
use ndg_core::{NetworkDesignGame, SubsidyAssignment};
use ndg_exec::Executor;
use ndg_graph::{EdgeId, NodeId, RootedTree};
use ndg_lp::{LinearProgram, LpStatus};
use std::collections::HashMap;

/// Solve LP (3) for the broadcast game and spanning tree `tree`; returns the
/// minimum-cost enforcing subsidies.
///
/// Constraint rows are built **sequentially** here: `snd`'s exhaustive
/// pricer calls this once per spanning tree from inside an
/// already-parallel sweep, where nested fan-out would only add spawn
/// overhead. For a large *single* instance, call
/// [`enforce_tree_lp_with`] with an explicit executor to parallelize the
/// row construction.
pub fn enforce_tree_lp(game: &NetworkDesignGame, tree: &[EdgeId]) -> Result<SneSolution, SneError> {
    enforce_tree_lp_with(game, tree, &Executor::sequential())
}

/// [`enforce_tree_lp`] with an explicit executor: the per-adjacency
/// constraint rows (one Lemma 2 constraint per ordered non-tree adjacency)
/// are built in parallel and added in adjacency order, so the LP — and its
/// optimum — is identical for every thread count.
pub fn enforce_tree_lp_with(
    game: &NetworkDesignGame,
    tree: &[EdgeId],
    ex: &Executor,
) -> Result<SneSolution, SneError> {
    let root = game.root().ok_or(SneError::NotBroadcast)?;
    let g = game.graph();
    let rt = RootedTree::new(g, tree, root).map_err(|_| SneError::NotASpanningTree)?;

    // One LP variable per tree edge.
    let mut lp = LinearProgram::new();
    let mut var_of: HashMap<EdgeId, usize> = HashMap::new();
    for &e in rt.edges() {
        let v = lp.add_var(1.0, 0.0, g.weight(e))?;
        var_of.insert(e, v);
    }

    let in_tree = rt.edge_membership(g);
    let adjacencies: Vec<(NodeId, NodeId, f64)> = g
        .edges()
        .filter(|(e, _)| !in_tree[e.index()])
        .flat_map(|(e, edge)| [(edge.u, edge.v, g.weight(e)), (edge.v, edge.u, g.weight(e))])
        .filter(|&(u, _, _)| u != root)
        .collect();
    let rows = ex.par_map(&adjacencies, |&(u, v, w_uv)| {
        deviation_row(&var_of, g, &rt, u, v, w_uv)
    });
    for (coeffs, rhs) in rows {
        lp.add_le(coeffs, rhs)?;
    }

    let sol = ndg_lp::solve(&lp)?;
    if sol.status != LpStatus::Optimal {
        return Err(SneError::BadLpStatus(sol.status));
    }
    debug_assert!(sol.verify(&lp, 1e-6), "LP solution fails re-verification");

    let mut b = SubsidyAssignment::zero(g);
    for (&e, &var) in &var_of {
        b.set(g, e, sol.x[var]);
    }
    crate::certified(game, tree, b)
}

/// The constraint row for player `u` deviating via a non-tree edge of
/// weight `w_uv` to node `v`:
/// `Σ_{T_u} (w−b)/n ≤ w_uv + Σ_{T_v} (w−b)/den` rearranged to
/// `−Σ_{T_u} b/n + Σ_{T_v} b/den ≤ w_uv + Σ_{T_v} w/den − Σ_{T_u} w/n`.
/// Shared edges above `lca(u, v)` cancel exactly (denominator `n_a` on
/// both sides), which the coefficient accumulation handles automatically.
fn deviation_row(
    var_of: &HashMap<EdgeId, usize>,
    g: &ndg_graph::Graph,
    rt: &RootedTree,
    u: NodeId,
    v: NodeId,
    w_uv: f64,
) -> (Vec<(usize, f64)>, f64) {
    let mut coeff: HashMap<usize, f64> = HashMap::new();
    let mut rhs = w_uv;
    // Left side: u's root path with denominators n_a = subtree(child).
    for (child, a) in rt.climb(u) {
        let n_a = rt.subtree_size(child) as f64;
        *coeff.entry(var_of[&a]).or_insert(0.0) -= 1.0 / n_a;
        rhs -= g.weight(a) / n_a;
    }
    // Right side: v's root path; below the lca the deviator joins
    // (denominator n_a + 1), above it she already uses the edge
    // (denominator n_a — cancels with the left side).
    let l = rt.lca(u, v);
    for (child, a) in rt.climb(v) {
        let den = if rt.depth(child) > rt.depth(l) {
            rt.subtree_size(child) as f64 + 1.0
        } else {
            rt.subtree_size(child) as f64
        };
        *coeff.entry(var_of[&a]).or_insert(0.0) += 1.0 / den;
        rhs += g.weight(a) / den;
    }
    let mut coeffs: Vec<(usize, f64)> = coeff
        .into_iter()
        .filter(|&(_, c)| c.abs() > 1e-14)
        .collect();
    // Deterministic row layout regardless of HashMap iteration order.
    coeffs.sort_by_key(|&(var, _)| var);
    (coeffs, rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndg_core::{is_tree_equilibrium, NetworkDesignGame};
    use ndg_graph::{generators, kruskal};

    #[test]
    fn already_stable_tree_needs_zero_subsidies() {
        // Star graphs: the unique spanning tree is trivially stable.
        let g = generators::star_graph(6, 1.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let tree: Vec<EdgeId> = game.graph().edge_ids().collect();
        let sol = enforce_tree_lp(&game, &tree).unwrap();
        assert!(sol.cost < 1e-9);
    }

    #[test]
    fn triangle_star_tree_zero_path_tree_positive() {
        let g = generators::cycle_graph(3, 1.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        // Stable star tree {e0, e2}.
        let sol = enforce_tree_lp(&game, &[EdgeId(0), EdgeId(2)]).unwrap();
        assert!(sol.cost < 1e-9);
        // Unstable path tree {e0, e1}: node 2 pays 1.5, deviation costs 1.
        // Cheapest fix: 0.5 of subsidy (e.g. all on e1).
        let sol2 = enforce_tree_lp(&game, &[EdgeId(0), EdgeId(1)]).unwrap();
        assert!(
            (sol2.cost - 0.5).abs() < 1e-6,
            "expected 0.5, got {}",
            sol2.cost
        );
    }

    #[test]
    fn theorem_11_cycle_optimum_is_packing() {
        // Unit cycle C_{n+1}: the minimum subsidy is achieved by packing on
        // the far edges; for n = 4 the optimum is 1 − ... verify against a
        // brute-force grid search for small n.
        let n = 4usize;
        let g = generators::cycle_graph(n + 1, 1.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let tree: Vec<EdgeId> = (0..n as u32).map(EdgeId).collect();
        let sol = enforce_tree_lp(&game, &tree).unwrap();
        // Brute force over a subsidy grid (step 0.02) on the 4 tree edges
        // would be 51^4 ≈ 6.8M — instead verify optimality by (a) validity
        // and (b) matching the cutting-plane solver (independent method).
        let (state, _) = ndg_core::State::from_tree(&game, &tree).unwrap();
        let (cut_sol, _) = crate::lp_general::enforce_state_cutting(&game, &state).unwrap();
        assert!(
            (sol.cost - cut_sol.cost).abs() < 1e-5,
            "lp3 {} vs lp1 {}",
            sol.cost,
            cut_sol.cost
        );
    }

    #[test]
    fn parallel_row_construction_is_thread_count_invariant() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(19);
        for _ in 0..8 {
            let n = rng.random_range(3..12usize);
            let g = generators::random_connected(n, 0.5, &mut rng, 0.3..4.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let tree = kruskal(game.graph()).unwrap();
            let seq =
                enforce_tree_lp_with(&game, &tree, &ndg_exec::Executor::sequential()).unwrap();
            for threads in [4usize, 8] {
                let par =
                    enforce_tree_lp_with(&game, &tree, &ndg_exec::Executor::new(threads)).unwrap();
                assert_eq!(
                    par.subsidies.as_slice(),
                    seq.subsidies.as_slice(),
                    "threads={threads}: subsidies diverged"
                );
            }
        }
    }

    #[test]
    fn solution_is_always_a_certified_equilibrium() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..15 {
            let n = rng.random_range(3..12usize);
            let g = generators::random_connected(n, 0.4, &mut rng, 0.3..4.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let tree = kruskal(game.graph()).unwrap();
            let sol = enforce_tree_lp(&game, &tree).unwrap();
            let rt = RootedTree::new(game.graph(), &tree, NodeId(0)).unwrap();
            assert!(is_tree_equilibrium(&game, &rt, &sol.subsidies));
            // Never more than full tree weight.
            assert!(sol.cost <= game.graph().weight_of(&tree) + 1e-6);
        }
    }

    #[test]
    fn rejects_non_broadcast_and_non_tree() {
        let g = generators::cycle_graph(4, 1.0);
        let game = NetworkDesignGame::new(
            g.clone(),
            vec![ndg_core::Player {
                source: NodeId(1),
                terminal: NodeId(3),
            }],
        )
        .unwrap();
        assert!(matches!(
            enforce_tree_lp(&game, &[EdgeId(0)]),
            Err(SneError::NotBroadcast)
        ));
        let bgame = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        assert!(matches!(
            enforce_tree_lp(&bgame, &[EdgeId(0)]),
            Err(SneError::NotASpanningTree)
        ));
    }

    #[test]
    fn mst_enforcement_never_exceeds_tree_weight_over_e_much() {
        // Theorem 6 says wgt(T)/e always suffices; the LP optimum must be
        // ≤ that bound (it is the exact minimum).
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..10 {
            let n = rng.random_range(3..10usize);
            let g = generators::random_connected(n, 0.5, &mut rng, 0.3..3.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let tree = kruskal(game.graph()).unwrap();
            let sol = enforce_tree_lp(&game, &tree).unwrap();
            let bound = game.graph().weight_of(&tree) / std::f64::consts::E;
            assert!(
                sol.cost <= bound + 1e-6,
                "LP cost {} exceeds wgt/e = {bound}",
                sol.cost
            );
        }
    }
}
