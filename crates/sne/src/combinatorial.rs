//! A combinatorial (LP-free) exact SNE algorithm for the cycle family —
//! a partial answer to the paper's first open problem (Section 6).
//!
//! Instance class: a cycle with arbitrary weights whose target tree is the
//! cycle minus one *root-incident* edge (the generalized Theorem 11
//! shape). Then exactly one Lemma 2 constraint exists — the far player `u`
//! deviating to the chord — and minimizing subsidies is a fractional
//! knapsack: reducing `u`'s cost by `δ` via edge `a` costs `δ · n_a(T)`
//! of subsidy, so the optimum greedily fills the least crowded (farthest)
//! edges first, exactly the packing of Figure 4. Verified against LP (3)
//! by randomized tests.

use crate::{SneError, SneSolution};
use ndg_core::{root_path_costs, NetworkDesignGame, SubsidyAssignment};
use ndg_graph::{EdgeId, NodeId, RootedTree};

/// Exact minimum subsidies for a broadcast game on a cycle whose tree is
/// the cycle minus a root-incident edge. Errors with
/// [`SneError::NotBroadcast`]/[`SneError::NotASpanningTree`] on malformed
/// input, and [`SneError::Cut`] if the instance is not of the supported
/// shape (non-cycle graph or chord not incident to the root).
pub fn enforce_cycle(game: &NetworkDesignGame, tree: &[EdgeId]) -> Result<SneSolution, SneError> {
    let root = game.root().ok_or(SneError::NotBroadcast)?;
    let g = game.graph();
    let n = g.node_count();
    if g.edge_count() != n || !g.nodes().all(|v| g.degree(v) == 2) {
        return Err(SneError::Cut("instance is not a cycle".into()));
    }
    let rt = RootedTree::new(g, tree, root).map_err(|_| SneError::NotASpanningTree)?;
    let in_tree = rt.edge_membership(g);
    let chord = g
        .edge_ids()
        .find(|e| !in_tree[e.index()])
        .expect("cycle minus tree leaves one chord");
    let (x, y) = g.endpoints(chord);
    let far = if x == root {
        y
    } else if y == root {
        x
    } else {
        return Err(SneError::Cut("chord must be incident to the root".into()));
    };

    // The single constraint: cost_far(T; b) ≤ w_chord.
    let b0 = SubsidyAssignment::zero(g);
    let base = root_path_costs(game, &rt, &b0)[far.index()];
    let mut b = SubsidyAssignment::zero(g);
    let mut need = base - g.weight(chord);
    if need > 0.0 {
        // Greedy fractional knapsack on the far player's path, least
        // crowded first: a unit of cost reduction on edge `a` costs
        // n_a(T) of subsidy.
        let mut path: Vec<(NodeId, EdgeId)> = rt.climb(far).collect();
        path.sort_by_key(|&(child, _)| rt.subtree_size(child));
        for (child, e) in path {
            if need <= 1e-12 {
                break;
            }
            let n_a = rt.subtree_size(child) as f64;
            let max_reduction = g.weight(e) / n_a;
            if max_reduction <= need + 1e-15 {
                b.set(g, e, g.weight(e));
                need -= max_reduction;
            } else {
                b.set(g, e, need * n_a);
                need = 0.0;
            }
        }
        if need > 1e-9 {
            // Even the fully subsidized path exceeds the chord: impossible
            // since then cost 0 ≤ w_chord ≥ 0.
            unreachable!("full subsidies always satisfy the constraint");
        }
    }
    crate::certified(game, tree, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndg_graph::Graph;
    use rand::prelude::*;

    /// Random-weight cycle with the chord at the root.
    fn random_cycle(n: usize, rng: &mut StdRng) -> (NetworkDesignGame, Vec<EdgeId>) {
        let mut g = Graph::new(n + 1);
        let mut tree = Vec::new();
        for i in 0..n {
            tree.push(
                g.add_edge(
                    NodeId(i as u32),
                    NodeId((i + 1) as u32),
                    rng.random_range(0.1..3.0),
                )
                .unwrap(),
            );
        }
        g.add_edge(NodeId(n as u32), NodeId(0), rng.random_range(0.1..3.0))
            .unwrap();
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        (game, tree)
    }

    #[test]
    fn matches_lp3_on_random_weighted_cycles() {
        let mut rng = StdRng::seed_from_u64(811);
        for _ in 0..40 {
            let n = rng.random_range(2..20usize);
            let (game, tree) = random_cycle(n, &mut rng);
            let comb = enforce_cycle(&game, &tree).expect("cycle shape");
            let lp = crate::lp_broadcast::enforce_tree_lp(&game, &tree).unwrap();
            assert!(
                (comb.cost - lp.cost).abs() < 1e-6,
                "combinatorial {} vs LP {}",
                comb.cost,
                lp.cost
            );
        }
    }

    #[test]
    fn theorem_11_instance_exact() {
        let (game, tree) = crate::lower_bound::cycle_instance(16);
        let comb = enforce_cycle(&game, &tree).unwrap();
        let lp = crate::lp_broadcast::enforce_tree_lp(&game, &tree).unwrap();
        assert!((comb.cost - lp.cost).abs() < 1e-7);
    }

    #[test]
    fn stable_cycle_needs_nothing() {
        // Expensive chord: H_n < w_chord ⇒ zero subsidies.
        let n = 5;
        let mut g = Graph::new(n + 1);
        let mut tree = Vec::new();
        for i in 0..n {
            tree.push(
                g.add_edge(NodeId(i as u32), NodeId((i + 1) as u32), 1.0)
                    .unwrap(),
            );
        }
        g.add_edge(NodeId(n as u32), NodeId(0), 10.0).unwrap();
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let sol = enforce_cycle(&game, &tree).unwrap();
        assert_eq!(sol.cost, 0.0);
    }

    #[test]
    fn rejects_unsupported_shapes() {
        // Non-cycle.
        let g = ndg_graph::generators::complete_graph(4, 1.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let tree = ndg_graph::kruskal(game.graph()).unwrap();
        assert!(matches!(enforce_cycle(&game, &tree), Err(SneError::Cut(_))));
        // Cycle, but the excluded edge is not root-incident.
        let g = ndg_graph::generators::cycle_graph(5, 1.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let tree: Vec<EdgeId> = vec![EdgeId(0), EdgeId(1), EdgeId(3), EdgeId(4)];
        assert!(matches!(enforce_cycle(&game, &tree), Err(SneError::Cut(_))));
    }
}
