//! Enforcement for *weighted* players (Section 6; Chen–Roughgarden \[14\]).
//!
//! With demands `dᵢ` and proportional sharing, Lemma 2's single-hop
//! constraint set does not obviously survive (its exchange argument uses
//! unit demands), so enforcement runs through the always-sound Theorem 1
//! route: constraint generation with the weighted best-response oracle.
//! The player constraints stay linear in `b` — dividing by `dᵢ`,
//!
//! ```text
//!   Σ_{a∈Tᵢ} (w_a−b_a)/D_a(T)  ≤  Σ_{a∈T'ᵢ} (w_a−b_a)/D'_a ,
//!   D'_a = D_a(T) + dᵢ·(1 − n_a^i(T)).
//! ```

use crate::{SneError, SneSolution};
use ndg_core::weighted::{weighted_player_cost, Demands};
use ndg_core::{NetworkDesignGame, State, SubsidyAssignment};
use ndg_graph::paths::dijkstra_with;
use ndg_graph::EdgeId;
use ndg_lp::{solve_with_cuts, CutStats, LinearProgram, Row, RowOp};
use std::collections::HashMap;

const ORACLE_TOL: f64 = 1e-7;
const MAX_ROUNDS: usize = 500;

/// Minimum-cost subsidies enforcing `state` in the weighted extension.
pub fn enforce_state_weighted(
    game: &NetworkDesignGame,
    state: &State,
    demands: &Demands,
) -> Result<(SneSolution, CutStats), SneError> {
    let g = game.graph();
    let established = state.established_edges();
    let mut lp = LinearProgram::new();
    let mut var_of: HashMap<EdgeId, usize> = HashMap::new();
    for &e in &established {
        let v = lp.add_var(1.0, 0.0, g.weight(e))?;
        var_of.insert(e, v);
    }
    let var_list = established.clone();

    let mut oracle = |x: &[f64]| -> Vec<Row> {
        let mut b = SubsidyAssignment::zero(g);
        for (k, &e) in var_list.iter().enumerate() {
            b.set(g, e, x[k]);
        }
        let mut cuts = Vec::new();
        for (i, player) in game.players().iter().enumerate() {
            let d_i = demands.of(i);
            let current = weighted_player_cost(game, state, demands, &b, i);
            let sp = dijkstra_with(g, player.source, |e| {
                let load = demands.load(state, e) + if state.uses(i, e) { 0.0 } else { d_i };
                b.residual(g, e) * d_i / load
            });
            if sp.dist[player.terminal.index()] < current - ORACLE_TOL {
                let path = sp.path_to(g, player.terminal).expect("reachable");
                cuts.push(constraint(game, state, demands, &var_of, i, &path));
            }
        }
        cuts
    };

    let (sol, stats) = solve_with_cuts(&mut lp, &mut oracle, MAX_ROUNDS)
        .map_err(|e| SneError::Cut(e.to_string()))?;
    let mut b = SubsidyAssignment::zero(g);
    for (k, &e) in var_list.iter().enumerate() {
        b.set(g, e, sol.x[k]);
    }
    if !ndg_core::weighted_is_equilibrium(game, state, demands, &b) {
        return Err(SneError::VerificationFailed);
    }
    Ok((SneSolution::new(b), stats))
}

fn constraint(
    game: &NetworkDesignGame,
    state: &State,
    demands: &Demands,
    var_of: &HashMap<EdgeId, usize>,
    i: usize,
    path: &[EdgeId],
) -> Row {
    let g = game.graph();
    let d_i = demands.of(i);
    let mut coeff: HashMap<usize, f64> = HashMap::new();
    let mut rhs = 0.0;
    for &a in state.path(i) {
        let load = demands.load(state, a);
        rhs -= g.weight(a) / load;
        if let Some(&v) = var_of.get(&a) {
            *coeff.entry(v).or_insert(0.0) -= 1.0 / load;
        }
    }
    for &a in path {
        let load = demands.load(state, a) + if state.uses(i, a) { 0.0 } else { d_i };
        rhs += g.weight(a) / load;
        if let Some(&v) = var_of.get(&a) {
            *coeff.entry(v).or_insert(0.0) += 1.0 / load;
        }
    }
    let coeffs: Vec<(usize, f64)> = coeff
        .into_iter()
        .filter(|&(_, c)| c.abs() > 1e-14)
        .collect();
    Row::new(coeffs, RowOp::Le, rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndg_graph::{generators, kruskal, NodeId};

    #[test]
    fn uniform_demands_match_unweighted_lp() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(711);
        for _ in 0..8 {
            let n = rng.random_range(3..8usize);
            let g = generators::random_connected(n, 0.5, &mut rng, 0.3..3.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let tree = kruskal(game.graph()).unwrap();
            let (state, _) = State::from_tree(&game, &tree).unwrap();
            let d = Demands::uniform(&game);
            let (weighted, _) = enforce_state_weighted(&game, &state, &d).unwrap();
            let unweighted = crate::lp_broadcast::enforce_tree_lp(&game, &tree).unwrap();
            assert!(
                (weighted.cost - unweighted.cost).abs() < 1e-5,
                "weighted {} vs unweighted {}",
                weighted.cost,
                unweighted.cost
            );
        }
    }

    #[test]
    fn skewed_demands_change_the_price() {
        // The heavy-player four-cycle from core::weighted: unweighted the
        // tree needs subsidies, weighted (d₁ huge) it is free.
        let mut g = ndg_graph::Graph::new(4);
        let e0 = g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let e1 = g.add_edge(NodeId(1), NodeId(2), 1.2).unwrap();
        let _e2 = g.add_edge(NodeId(2), NodeId(3), 0.9).unwrap();
        let e3 = g.add_edge(NodeId(3), NodeId(0), 1.0).unwrap();
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let (state, _) = State::from_tree(&game, &[e0, e1, e3]).unwrap();

        let uniform = Demands::uniform(&game);
        let (u_sol, _) = enforce_state_weighted(&game, &state, &uniform).unwrap();
        assert!(u_sol.cost > 0.1, "unweighted tree needs real subsidies");

        let skewed = Demands::new(&game, vec![1000.0, 1.0, 1.0]).unwrap();
        let (s_sol, stats) = enforce_state_weighted(&game, &state, &skewed).unwrap();
        assert!(s_sol.cost < 1e-9, "heavy demand stabilizes for free");
        assert_eq!(stats.cuts_added, 0);
    }

    #[test]
    fn certifies_on_random_demands() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(713);
        for _ in 0..6 {
            let n = rng.random_range(3..7usize);
            let g = generators::random_connected(n, 0.5, &mut rng, 0.3..3.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let tree = kruskal(game.graph()).unwrap();
            let (state, _) = State::from_tree(&game, &tree).unwrap();
            let d = Demands::new(
                &game,
                (0..game.num_players())
                    .map(|_| rng.random_range(0.2..5.0))
                    .collect(),
            )
            .unwrap();
            let (sol, _) = enforce_state_weighted(&game, &state, &d).unwrap();
            assert!(ndg_core::weighted_is_equilibrium(
                &game,
                &state,
                &d,
                &sol.subsidies
            ));
        }
    }
}
