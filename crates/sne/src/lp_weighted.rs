//! Enforcement for *weighted* players (Section 6; Chen–Roughgarden \[14\]).
//!
//! With demands `dᵢ` and proportional sharing, Lemma 2's single-hop
//! constraint set does not obviously survive (its exchange argument uses
//! unit demands), so enforcement runs through the always-sound Theorem 1
//! route: constraint generation with the weighted best-response oracle.
//! The player constraints stay linear in `b` — dividing by `dᵢ`,
//!
//! ```text
//!   Σ_{a∈Tᵢ} (w_a−b_a)/D_a(T)  ≤  Σ_{a∈T'ᵢ} (w_a−b_a)/D'_a ,
//!   D'_a = D_a(T) + dᵢ·(1 − n_a^i(T)).
//! ```

use crate::{SneError, SneSolution};
use ndg_core::weighted::{weighted_player_cost, Demands};
use ndg_core::{NetworkDesignGame, State, SubsidyAssignment};
use ndg_exec::{Budget, Executor};
use ndg_graph::paths::{PooledWorkspace, WorkspacePool};
use ndg_graph::EdgeId;
use ndg_lp::{
    solve_with_batched_cuts_budgeted, BatchSeparationOracle, CutError, CutStats, LinearProgram,
    Row, RowOp,
};
use std::collections::HashMap;

const ORACLE_TOL: f64 = 1e-7;
const MAX_ROUNDS: usize = 500;

/// The weighted best-response oracle as a batch of per-player items (same
/// parallel shape as `lp_general`: one pooled Dijkstra workspace per
/// worker, rows gathered in player order).
struct WeightedSeparator<'a> {
    game: &'a NetworkDesignGame,
    state: &'a State,
    demands: &'a Demands,
    var_list: &'a [EdgeId],
    var_of: &'a HashMap<EdgeId, usize>,
    pool: &'a WorkspacePool,
    b: SubsidyAssignment,
}

impl<'a> BatchSeparationOracle for WeightedSeparator<'a> {
    type Scratch = (PooledWorkspace<'a>, Vec<EdgeId>);

    fn batch_size(&self) -> usize {
        self.game.num_players()
    }

    fn prepare(&mut self, x: &[f64]) {
        let g = self.game.graph();
        for (k, &e) in self.var_list.iter().enumerate() {
            self.b.set(g, e, x[k]);
        }
    }

    fn make_scratch(&self) -> Self::Scratch {
        (self.pool.acquire(), Vec::new())
    }

    fn separate_item(&self, i: usize, (ws, path): &mut Self::Scratch) -> Option<Row> {
        let g = self.game.graph();
        let player = self.game.players()[i];
        let (state, demands, b) = (self.state, self.demands, &self.b);
        let d_i = demands.of(i);
        let current = weighted_player_cost(self.game, state, demands, b, i);
        ws.run(g, player.source, Some(player.terminal), |e| {
            let load = demands.load(state, e) + if state.uses(i, e) { 0.0 } else { d_i };
            b.residual(g, e) * d_i / load
        });
        if ws.dist(player.terminal) < current - ORACLE_TOL {
            let reached = ws.path_into(g, player.terminal, path);
            debug_assert!(reached, "terminal reachable by game validation");
            Some(constraint(self.game, state, demands, self.var_of, i, path))
        } else {
            None
        }
    }
}

/// Minimum-cost subsidies enforcing `state` in the weighted extension.
/// Separation runs on the environment-default executor (`NDG_THREADS`).
pub fn enforce_state_weighted(
    game: &NetworkDesignGame,
    state: &State,
    demands: &Demands,
) -> Result<(SneSolution, CutStats), SneError> {
    enforce_state_weighted_with(game, state, demands, &Executor::from_env())
}

/// [`enforce_state_weighted`] with an explicit executor for the batched
/// separation rounds. The result is independent of the thread count.
pub fn enforce_state_weighted_with(
    game: &NetworkDesignGame,
    state: &State,
    demands: &Demands,
    ex: &Executor,
) -> Result<(SneSolution, CutStats), SneError> {
    enforce_state_weighted_budgeted(game, state, demands, ex, &Budget::unlimited())
}

/// [`enforce_state_weighted_with`] under a cooperative [`Budget`], checked
/// at cutting-plane round boundaries; expiry surfaces as
/// [`SneError::Cancelled`].
pub fn enforce_state_weighted_budgeted(
    game: &NetworkDesignGame,
    state: &State,
    demands: &Demands,
    ex: &Executor,
    budget: &Budget,
) -> Result<(SneSolution, CutStats), SneError> {
    let g = game.graph();
    let established = state.established_edges();
    let mut lp = LinearProgram::new();
    let mut var_of: HashMap<EdgeId, usize> = HashMap::new();
    for &e in &established {
        let v = lp.add_var(1.0, 0.0, g.weight(e))?;
        var_of.insert(e, v);
    }
    let var_list = established.clone();

    let pool = WorkspacePool::new(g.node_count());
    let mut oracle = WeightedSeparator {
        game,
        state,
        demands,
        var_list: &var_list,
        var_of: &var_of,
        pool: &pool,
        b: SubsidyAssignment::zero(g),
    };
    let (sol, stats) =
        solve_with_batched_cuts_budgeted(&mut lp, &mut oracle, MAX_ROUNDS, ex, budget).map_err(
            |e| match e {
                CutError::Cancelled => SneError::Cancelled,
                other => SneError::Cut(other.to_string()),
            },
        )?;
    let mut b = SubsidyAssignment::zero(g);
    for (k, &e) in var_list.iter().enumerate() {
        b.set(g, e, sol.x[k]);
    }
    if !ndg_core::weighted_is_equilibrium(game, state, demands, &b) {
        return Err(SneError::VerificationFailed);
    }
    Ok((SneSolution::new(b), stats))
}

fn constraint(
    game: &NetworkDesignGame,
    state: &State,
    demands: &Demands,
    var_of: &HashMap<EdgeId, usize>,
    i: usize,
    path: &[EdgeId],
) -> Row {
    let g = game.graph();
    let d_i = demands.of(i);
    let mut coeff: HashMap<usize, f64> = HashMap::new();
    let mut rhs = 0.0;
    for &a in state.path(i) {
        let load = demands.load(state, a);
        rhs -= g.weight(a) / load;
        if let Some(&v) = var_of.get(&a) {
            *coeff.entry(v).or_insert(0.0) -= 1.0 / load;
        }
    }
    for &a in path {
        let load = demands.load(state, a) + if state.uses(i, a) { 0.0 } else { d_i };
        rhs += g.weight(a) / load;
        if let Some(&v) = var_of.get(&a) {
            *coeff.entry(v).or_insert(0.0) += 1.0 / load;
        }
    }
    let mut coeffs: Vec<(usize, f64)> = coeff
        .into_iter()
        .filter(|&(_, c)| c.abs() > 1e-14)
        .collect();
    // Deterministic row layout regardless of HashMap iteration order.
    coeffs.sort_by_key(|&(v, _)| v);
    Row::new(coeffs, RowOp::Le, rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndg_graph::{generators, kruskal, NodeId};

    #[test]
    fn uniform_demands_match_unweighted_lp() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(711);
        for _ in 0..8 {
            let n = rng.random_range(3..8usize);
            let g = generators::random_connected(n, 0.5, &mut rng, 0.3..3.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let tree = kruskal(game.graph()).unwrap();
            let (state, _) = State::from_tree(&game, &tree).unwrap();
            let d = Demands::uniform(&game);
            let (weighted, _) = enforce_state_weighted(&game, &state, &d).unwrap();
            let unweighted = crate::lp_broadcast::enforce_tree_lp(&game, &tree).unwrap();
            assert!(
                (weighted.cost - unweighted.cost).abs() < 1e-5,
                "weighted {} vs unweighted {}",
                weighted.cost,
                unweighted.cost
            );
        }
    }

    #[test]
    fn skewed_demands_change_the_price() {
        // The heavy-player four-cycle from core::weighted: unweighted the
        // tree needs subsidies, weighted (d₁ huge) it is free.
        let mut g = ndg_graph::Graph::new(4);
        let e0 = g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let e1 = g.add_edge(NodeId(1), NodeId(2), 1.2).unwrap();
        let _e2 = g.add_edge(NodeId(2), NodeId(3), 0.9).unwrap();
        let e3 = g.add_edge(NodeId(3), NodeId(0), 1.0).unwrap();
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let (state, _) = State::from_tree(&game, &[e0, e1, e3]).unwrap();

        let uniform = Demands::uniform(&game);
        let (u_sol, _) = enforce_state_weighted(&game, &state, &uniform).unwrap();
        assert!(u_sol.cost > 0.1, "unweighted tree needs real subsidies");

        let skewed = Demands::new(&game, vec![1000.0, 1.0, 1.0]).unwrap();
        let (s_sol, stats) = enforce_state_weighted(&game, &state, &skewed).unwrap();
        assert!(s_sol.cost < 1e-9, "heavy demand stabilizes for free");
        assert_eq!(stats.cuts_added, 0);
    }

    #[test]
    fn certifies_on_random_demands() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(713);
        for _ in 0..6 {
            let n = rng.random_range(3..7usize);
            let g = generators::random_connected(n, 0.5, &mut rng, 0.3..3.0);
            let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let tree = kruskal(game.graph()).unwrap();
            let (state, _) = State::from_tree(&game, &tree).unwrap();
            let d = Demands::new(
                &game,
                (0..game.num_players())
                    .map(|_| rng.random_range(0.2..5.0))
                    .collect(),
            )
            .unwrap();
            let (sol, _) = enforce_state_weighted(&game, &state, &d).unwrap();
            assert!(ndg_core::weighted_is_equilibrium(
                &game,
                &state,
                &d,
                &sol.subsidies
            ));
        }
    }
}
