//! `ndg-sne` — Stable Network Enforcement (Sections 3–4 of the paper).
//!
//! Given a network design game and a target state `T`, compute subsidies of
//! minimum cost that enforce `T` as a Nash equilibrium of the extension:
//!
//! * [`lp_broadcast`] — LP (3): the O(|E|)-constraint broadcast LP
//!   certified correct by Lemma 2.
//! * [`lp_general`] — LP (1): the exponential LP solved by cutting planes
//!   with the shortest-path separation oracle (Theorem 1).
//! * [`lp_poly`] — LP (2): the polynomial-size `π`-variable reformulation.
//! * [`theorem6`] — the constructive algorithm of Theorem 6: weight-layer
//!   decomposition + virtual-cost subsidy packing, with certified cost
//!   `≤ wgt(T)/e`.
//! * [`lower_bound`] — the Theorem 11 cycle family showing `1/e` is tight.
//!
//! Extensions beyond the paper's core results (its Section 6 program):
//!
//! * [`combinatorial`] — an LP-free exact SNE algorithm for the cycle
//!   family (partial answer to the first open problem);
//! * [`lp_weighted`] — enforcement for weighted players via the Theorem 1
//!   constraint-generation route.

pub mod combinatorial;
pub mod lower_bound;
pub mod lp_broadcast;
pub mod lp_general;
pub mod lp_poly;
pub mod lp_weighted;
pub mod theorem6;

use ndg_core::{NetworkDesignGame, SubsidyAssignment};
use ndg_graph::EdgeId;
use std::fmt;

/// A subsidy assignment enforcing the target, with its cost.
#[derive(Clone, Debug)]
pub struct SneSolution {
    /// The enforcing subsidies.
    pub subsidies: SubsidyAssignment,
    /// `Σ_a b_a` (cached).
    pub cost: f64,
}

impl SneSolution {
    /// Wrap an assignment, caching its cost.
    pub fn new(subsidies: SubsidyAssignment) -> Self {
        let cost = subsidies.cost();
        SneSolution { subsidies, cost }
    }
}

/// Errors across the SNE solvers.
#[derive(Clone, Debug)]
pub enum SneError {
    /// The game must be a broadcast game for this solver.
    NotBroadcast,
    /// The target edge set is not a spanning tree.
    NotASpanningTree,
    /// Target-state construction failed.
    State(ndg_core::StateError),
    /// LP machinery failed.
    Lp(ndg_lp::LpError),
    /// Cutting-plane loop failed.
    Cut(String),
    /// The LP reported infeasible/unbounded — impossible for SNE (full
    /// subsidies always enforce), so it indicates a numerical breakdown.
    BadLpStatus(ndg_lp::LpStatus),
    /// The computed assignment failed the final equilibrium re-check.
    VerificationFailed,
    /// The caller's [`ndg_exec::Budget`] expired before the solve finished.
    Cancelled,
}

impl fmt::Display for SneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SneError::NotBroadcast => write!(f, "solver requires a broadcast game"),
            SneError::NotASpanningTree => write!(f, "target is not a spanning tree"),
            SneError::State(e) => write!(f, "state error: {e}"),
            SneError::Lp(e) => write!(f, "lp error: {e}"),
            SneError::Cut(e) => write!(f, "cutting-plane error: {e}"),
            SneError::BadLpStatus(s) => write!(f, "unexpected LP status {s:?}"),
            SneError::VerificationFailed => {
                write!(f, "computed subsidies fail the equilibrium re-check")
            }
            SneError::Cancelled => write!(f, "solve cancelled by budget"),
        }
    }
}

impl std::error::Error for SneError {}

impl From<ndg_lp::LpError> for SneError {
    fn from(e: ndg_lp::LpError) -> Self {
        SneError::Lp(e)
    }
}

impl From<ndg_core::StateError> for SneError {
    fn from(e: ndg_core::StateError) -> Self {
        SneError::State(e)
    }
}

/// A uniform interface over the SNE solvers so experiments can sweep them.
pub trait SneSolver {
    /// Short identifier for reports.
    fn name(&self) -> &'static str;

    /// Compute subsidies enforcing the spanning tree `tree` in `game`.
    fn solve(&self, game: &NetworkDesignGame, tree: &[EdgeId]) -> Result<SneSolution, SneError>;
}

/// LP (3) solver (broadcast games).
pub struct BroadcastLpSolver;

impl SneSolver for BroadcastLpSolver {
    fn name(&self) -> &'static str {
        "lp3-broadcast"
    }
    fn solve(&self, game: &NetworkDesignGame, tree: &[EdgeId]) -> Result<SneSolution, SneError> {
        lp_broadcast::enforce_tree_lp(game, tree)
    }
}

/// LP (1) cutting-plane solver (general games; here applied to trees).
pub struct CuttingPlaneSolver;

impl SneSolver for CuttingPlaneSolver {
    fn name(&self) -> &'static str {
        "lp1-cutting"
    }
    fn solve(&self, game: &NetworkDesignGame, tree: &[EdgeId]) -> Result<SneSolution, SneError> {
        let (state, _) = ndg_core::State::from_tree(game, tree)?;
        lp_general::enforce_state_cutting(game, &state).map(|(sol, _)| sol)
    }
}

/// LP (2) polynomial-size solver.
pub struct PolyLpSolver;

impl SneSolver for PolyLpSolver {
    fn name(&self) -> &'static str {
        "lp2-poly"
    }
    fn solve(&self, game: &NetworkDesignGame, tree: &[EdgeId]) -> Result<SneSolution, SneError> {
        let (state, _) = ndg_core::State::from_tree(game, tree)?;
        lp_poly::enforce_state_poly(game, &state)
    }
}

/// Theorem 6 constructive solver (broadcast games, MST targets).
pub struct Theorem6Solver;

impl SneSolver for Theorem6Solver {
    fn name(&self) -> &'static str {
        "theorem6"
    }
    fn solve(&self, game: &NetworkDesignGame, tree: &[EdgeId]) -> Result<SneSolution, SneError> {
        theorem6::enforce(game, tree)
    }
}

/// Verify that `subsidies` enforce the tree as an equilibrium, returning a
/// [`SneSolution`] only on success (used as a final gate by every solver).
pub fn certified(
    game: &NetworkDesignGame,
    tree: &[EdgeId],
    subsidies: SubsidyAssignment,
) -> Result<SneSolution, SneError> {
    let root = game.root().ok_or(SneError::NotBroadcast)?;
    let rt = ndg_graph::RootedTree::new(game.graph(), tree, root)
        .map_err(|_| SneError::NotASpanningTree)?;
    if ndg_core::is_tree_equilibrium(game, &rt, &subsidies) {
        Ok(SneSolution::new(subsidies))
    } else {
        Err(SneError::VerificationFailed)
    }
}
