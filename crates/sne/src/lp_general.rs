//! LP (1): the exponential enforcement LP, solved by cutting planes with
//! the paper's shortest-path separation oracle (Theorem 1).
//!
//! For each player `i` and *every* alternative path `T'ᵢ ∈ 𝒯ᵢ` there is a
//! constraint `costᵢ(T; b) ≤ costᵢ(T₋ᵢ, T'ᵢ; b)`. The oracle finds the most
//! violated one by a Dijkstra run on the graph `Hᵢ` with weights
//! `w'_a = (w_a − b_a)/(n_a(T) + 1 − n_a^i(T))`, which works for arbitrary
//! (not just broadcast) network design games.
//!
//! Separation is *batched*: the per-player Dijkstras of one round are
//! independent, so they run concurrently through
//! [`ndg_lp::solve_with_batched_cuts`] with one pooled
//! [`DijkstraWorkspace`](ndg_graph::DijkstraWorkspace) per worker thread.
//! Rows are gathered in player order and each row's coefficients are
//! sorted by variable, so the relaxation sequence — and therefore the
//! returned subsidy vector — is bit-identical for every thread count.

use crate::{SneError, SneSolution};
use ndg_core::{NetworkDesignGame, State, SubsidyAssignment};
use ndg_exec::{Budget, Executor};
use ndg_graph::paths::{PooledWorkspace, WorkspacePool};
use ndg_graph::EdgeId;
use ndg_lp::{
    solve_with_batched_cuts_budgeted, BatchSeparationOracle, CutError, CutStats, LinearProgram,
    Row, RowOp,
};
use std::collections::HashMap;

/// Oracle violation tolerance: constraints violated by less than this are
/// considered satisfied (keeps the loop finite under f64 noise).
const ORACLE_TOL: f64 = 1e-7;
/// Cap on cutting-plane rounds.
const MAX_ROUNDS: usize = 500;

/// The Theorem 1 shortest-path oracle as a batch of per-player items.
struct ShortestPathSeparator<'a> {
    game: &'a NetworkDesignGame,
    state: &'a State,
    var_list: &'a [EdgeId],
    var_of: &'a HashMap<EdgeId, usize>,
    pool: &'a WorkspacePool,
    /// The subsidies decoded from the current relaxation point.
    b: SubsidyAssignment,
}

impl<'a> BatchSeparationOracle for ShortestPathSeparator<'a> {
    type Scratch = (PooledWorkspace<'a>, Vec<EdgeId>);

    fn batch_size(&self) -> usize {
        self.game.num_players()
    }

    fn prepare(&mut self, x: &[f64]) {
        let g = self.game.graph();
        for (k, &e) in self.var_list.iter().enumerate() {
            self.b.set(g, e, x[k]);
        }
    }

    fn make_scratch(&self) -> Self::Scratch {
        (self.pool.acquire(), Vec::new())
    }

    fn separate_item(&self, i: usize, (ws, path): &mut Self::Scratch) -> Option<Row> {
        let g = self.game.graph();
        let player = self.game.players()[i];
        let (state, b) = (self.state, &self.b);
        let current = ndg_core::player_cost(self.game, state, b, i);
        ws.run(g, player.source, Some(player.terminal), |e| {
            let den = state.usage(e) + 1 - u32::from(state.uses(i, e));
            b.residual(g, e) / den as f64
        });
        if ws.dist(player.terminal) < current - ORACLE_TOL {
            let reached = ws.path_into(g, player.terminal, path);
            debug_assert!(reached, "terminal reachable by game validation");
            Some(constraint_for_path(self.game, state, self.var_of, i, path))
        } else {
            None
        }
    }
}

/// Solve the optimization version of SNE for an arbitrary game and target
/// state by constraint generation. Returns the solution and loop stats.
/// Separation runs on the environment-default executor (`NDG_THREADS`).
pub fn enforce_state_cutting(
    game: &NetworkDesignGame,
    state: &State,
) -> Result<(SneSolution, CutStats), SneError> {
    enforce_state_cutting_with(game, state, &Executor::from_env())
}

/// [`enforce_state_cutting`] with an explicit executor for the batched
/// separation rounds. The result is independent of the thread count.
pub fn enforce_state_cutting_with(
    game: &NetworkDesignGame,
    state: &State,
    ex: &Executor,
) -> Result<(SneSolution, CutStats), SneError> {
    enforce_state_cutting_budgeted(game, state, ex, &Budget::unlimited())
}

/// [`enforce_state_cutting_with`] under a cooperative [`Budget`]: the
/// budget is checked at every cutting-plane round boundary and expiry
/// surfaces as [`SneError::Cancelled`]. With an unlimited budget the
/// relaxation sequence (and thus the subsidy vector) is unchanged.
pub fn enforce_state_cutting_budgeted(
    game: &NetworkDesignGame,
    state: &State,
    ex: &Executor,
    budget: &Budget,
) -> Result<(SneSolution, CutStats), SneError> {
    let g = game.graph();
    // Variables: subsidies on established edges only (off-support subsidies
    // can only cheapen deviations).
    let established = state.established_edges();
    let mut lp = LinearProgram::new();
    let mut var_of: HashMap<EdgeId, usize> = HashMap::new();
    for &e in &established {
        let v = lp.add_var(1.0, 0.0, g.weight(e))?;
        var_of.insert(e, v);
    }
    let var_list: Vec<EdgeId> = established.clone();

    let pool = WorkspacePool::new(g.node_count());
    let mut oracle = ShortestPathSeparator {
        game,
        state,
        var_list: &var_list,
        var_of: &var_of,
        pool: &pool,
        b: SubsidyAssignment::zero(g),
    };
    let (sol, stats) =
        solve_with_batched_cuts_budgeted(&mut lp, &mut oracle, MAX_ROUNDS, ex, budget).map_err(
            |e| match e {
                CutError::Cancelled => SneError::Cancelled,
                other => SneError::Cut(other.to_string()),
            },
        )?;

    let mut b = SubsidyAssignment::zero(g);
    for (k, &e) in var_list.iter().enumerate() {
        b.set(g, e, sol.x[k]);
    }
    // Final gate: exact equilibrium re-check.
    if !ndg_core::is_equilibrium(game, state, &b) {
        return Err(SneError::VerificationFailed);
    }
    Ok((SneSolution::new(b), stats))
}

/// Build the LP row `costᵢ(T; b) ≤ costᵢ(T₋ᵢ, path; b)` rearranged over the
/// subsidy variables:
/// `−Σ_{a∈Tᵢ} b_a/n_a + Σ_{a∈path} b_a/den_a ≤
///  Σ_{a∈path} w_a/den_a − Σ_{a∈Tᵢ} w_a/n_a`.
/// Edges outside the variable support contribute constants only
/// (their `b_a = 0`).
fn constraint_for_path(
    game: &NetworkDesignGame,
    state: &State,
    var_of: &HashMap<EdgeId, usize>,
    i: usize,
    path: &[EdgeId],
) -> Row {
    let g = game.graph();
    let mut coeff: HashMap<usize, f64> = HashMap::new();
    let mut rhs = 0.0;
    for &a in state.path(i) {
        let n_a = state.usage(a) as f64;
        rhs -= g.weight(a) / n_a;
        if let Some(&v) = var_of.get(&a) {
            *coeff.entry(v).or_insert(0.0) -= 1.0 / n_a;
        }
    }
    for &a in path {
        let den = (state.usage(a) + 1 - u32::from(state.uses(i, a))) as f64;
        rhs += g.weight(a) / den;
        if let Some(&v) = var_of.get(&a) {
            *coeff.entry(v).or_insert(0.0) += 1.0 / den;
        }
    }
    let mut coeffs: Vec<(usize, f64)> = coeff
        .into_iter()
        .filter(|&(_, c)| c.abs() > 1e-14)
        .collect();
    // Sorted coefficients make the row independent of HashMap iteration
    // order — part of the bit-reproducibility guarantee across runs and
    // thread counts.
    coeffs.sort_by_key(|&(v, _)| v);
    Row::new(coeffs, RowOp::Le, rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndg_core::Player;
    use ndg_graph::{generators, kruskal, NodeId};

    #[test]
    fn agrees_with_lp3_on_broadcast_instances() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..12 {
            let n = rng.random_range(3..9usize);
            let g = generators::random_connected(n, 0.5, &mut rng, 0.3..3.0);
            let game = ndg_core::NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let tree = kruskal(game.graph()).unwrap();
            let lp3 = crate::lp_broadcast::enforce_tree_lp(&game, &tree).unwrap();
            let (state, _) = State::from_tree(&game, &tree).unwrap();
            let (lp1, stats) = enforce_state_cutting(&game, &state).unwrap();
            assert!(
                (lp3.cost - lp1.cost).abs() < 1e-5,
                "lp3 {} vs lp1 {} (rounds {})",
                lp3.cost,
                lp1.cost,
                stats.rounds
            );
        }
    }

    #[test]
    fn works_on_general_two_player_game() {
        // 2×3 grid, two crossing players sharing the middle column.
        let g = generators::grid_graph(2, 3, 1.0);
        let game = ndg_core::NetworkDesignGame::new(
            g,
            vec![
                Player {
                    source: NodeId(0),
                    terminal: NodeId(5),
                },
                Player {
                    source: NodeId(3),
                    terminal: NodeId(2),
                },
            ],
        )
        .unwrap();
        let tree = kruskal(game.graph()).unwrap();
        let (state, _) = State::from_tree(&game, &tree).unwrap();
        let (sol, _) = enforce_state_cutting(&game, &state).unwrap();
        assert!(ndg_core::is_equilibrium(&game, &state, &sol.subsidies));
        assert!(sol.cost >= 0.0);
    }

    #[test]
    fn subsidy_vectors_identical_across_thread_counts() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(43);
        for _ in 0..6 {
            let n = rng.random_range(4..10usize);
            let g = generators::random_connected(n, 0.5, &mut rng, 0.3..3.0);
            let game = ndg_core::NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let tree = kruskal(game.graph()).unwrap();
            let (state, _) = State::from_tree(&game, &tree).unwrap();
            let mut reference: Option<(Vec<f64>, usize, usize)> = None;
            for threads in [1usize, 4, 8] {
                let ex = ndg_exec::Executor::new(threads);
                let (sol, stats) = enforce_state_cutting_with(&game, &state, &ex).unwrap();
                let x = sol.subsidies.as_slice().to_vec();
                match &reference {
                    None => reference = Some((x, stats.rounds, stats.cuts_added)),
                    Some((want, rounds, cuts)) => {
                        assert_eq!(&x, want, "threads={threads}: subsidies diverged");
                        assert_eq!(stats.rounds, *rounds);
                        assert_eq!(stats.cuts_added, *cuts);
                    }
                }
            }
        }
    }

    #[test]
    fn zero_rounds_when_already_stable() {
        let g = generators::star_graph(5, 2.0);
        let game = ndg_core::NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let tree: Vec<EdgeId> = game.graph().edge_ids().collect();
        let (state, _) = State::from_tree(&game, &tree).unwrap();
        let (sol, stats) = enforce_state_cutting(&game, &state).unwrap();
        assert!(sol.cost < 1e-9);
        assert_eq!(stats.cuts_added, 0);
        assert_eq!(stats.rounds, 1);
    }

    #[test]
    fn cycle_instance_exact_value_small() {
        // Triangle path-tree: minimum subsidy 0.5 (matches LP(3) test).
        let g = generators::cycle_graph(3, 1.0);
        let game = ndg_core::NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let (state, _) = State::from_tree(&game, &[EdgeId(0), EdgeId(1)]).unwrap();
        let (sol, _) = enforce_state_cutting(&game, &state).unwrap();
        assert!((sol.cost - 0.5).abs() < 1e-6, "got {}", sol.cost);
    }
}
