//! LP (1): the exponential enforcement LP, solved by cutting planes with
//! the paper's shortest-path separation oracle (Theorem 1).
//!
//! For each player `i` and *every* alternative path `T'ᵢ ∈ 𝒯ᵢ` there is a
//! constraint `costᵢ(T; b) ≤ costᵢ(T₋ᵢ, T'ᵢ; b)`. The oracle finds the most
//! violated one by a Dijkstra run on the graph `Hᵢ` with weights
//! `w'_a = (w_a − b_a)/(n_a(T) + 1 − n_a^i(T))`, which works for arbitrary
//! (not just broadcast) network design games.

use crate::{SneError, SneSolution};
use ndg_core::{NetworkDesignGame, State, SubsidyAssignment};
use ndg_graph::paths::dijkstra_with;
use ndg_graph::EdgeId;
use ndg_lp::{solve_with_cuts, CutStats, LinearProgram, Row, RowOp};
use std::collections::HashMap;

/// Oracle violation tolerance: constraints violated by less than this are
/// considered satisfied (keeps the loop finite under f64 noise).
const ORACLE_TOL: f64 = 1e-7;
/// Cap on cutting-plane rounds.
const MAX_ROUNDS: usize = 500;

/// Solve the optimization version of SNE for an arbitrary game and target
/// state by constraint generation. Returns the solution and loop stats.
pub fn enforce_state_cutting(
    game: &NetworkDesignGame,
    state: &State,
) -> Result<(SneSolution, CutStats), SneError> {
    let g = game.graph();
    // Variables: subsidies on established edges only (off-support subsidies
    // can only cheapen deviations).
    let established = state.established_edges();
    let mut lp = LinearProgram::new();
    let mut var_of: HashMap<EdgeId, usize> = HashMap::new();
    for &e in &established {
        let v = lp.add_var(1.0, 0.0, g.weight(e))?;
        var_of.insert(e, v);
    }
    let var_list: Vec<EdgeId> = established.clone();

    let mut oracle = |x: &[f64]| -> Vec<Row> {
        // Interpret x as a subsidy assignment.
        let mut b = SubsidyAssignment::zero(g);
        for (k, &e) in var_list.iter().enumerate() {
            b.set(g, e, x[k]);
        }
        let mut cuts = Vec::new();
        for (i, player) in game.players().iter().enumerate() {
            let current = ndg_core::player_cost(game, state, &b, i);
            let sp = dijkstra_with(g, player.source, |e| {
                let den = state.usage(e) + 1 - u32::from(state.uses(i, e));
                b.residual(g, e) / den as f64
            });
            if sp.dist[player.terminal.index()] < current - ORACLE_TOL {
                let path = sp
                    .path_to(g, player.terminal)
                    .expect("terminal reachable by game validation");
                cuts.push(constraint_for_path(game, state, &var_of, i, &path));
            }
        }
        cuts
    };

    let (sol, stats) = solve_with_cuts(&mut lp, &mut oracle, MAX_ROUNDS)
        .map_err(|e| SneError::Cut(e.to_string()))?;

    let mut b = SubsidyAssignment::zero(g);
    for (k, &e) in var_list.iter().enumerate() {
        b.set(g, e, sol.x[k]);
    }
    // Final gate: exact equilibrium re-check.
    if !ndg_core::is_equilibrium(game, state, &b) {
        return Err(SneError::VerificationFailed);
    }
    Ok((SneSolution::new(b), stats))
}

/// Build the LP row `costᵢ(T; b) ≤ costᵢ(T₋ᵢ, path; b)` rearranged over the
/// subsidy variables:
/// `−Σ_{a∈Tᵢ} b_a/n_a + Σ_{a∈path} b_a/den_a ≤
///  Σ_{a∈path} w_a/den_a − Σ_{a∈Tᵢ} w_a/n_a`.
/// Edges outside the variable support contribute constants only
/// (their `b_a = 0`).
fn constraint_for_path(
    game: &NetworkDesignGame,
    state: &State,
    var_of: &HashMap<EdgeId, usize>,
    i: usize,
    path: &[EdgeId],
) -> Row {
    let g = game.graph();
    let mut coeff: HashMap<usize, f64> = HashMap::new();
    let mut rhs = 0.0;
    for &a in state.path(i) {
        let n_a = state.usage(a) as f64;
        rhs -= g.weight(a) / n_a;
        if let Some(&v) = var_of.get(&a) {
            *coeff.entry(v).or_insert(0.0) -= 1.0 / n_a;
        }
    }
    for &a in path {
        let den = (state.usage(a) + 1 - u32::from(state.uses(i, a))) as f64;
        rhs += g.weight(a) / den;
        if let Some(&v) = var_of.get(&a) {
            *coeff.entry(v).or_insert(0.0) += 1.0 / den;
        }
    }
    let coeffs: Vec<(usize, f64)> = coeff
        .into_iter()
        .filter(|&(_, c)| c.abs() > 1e-14)
        .collect();
    Row::new(coeffs, RowOp::Le, rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndg_core::Player;
    use ndg_graph::{generators, kruskal, NodeId};

    #[test]
    fn agrees_with_lp3_on_broadcast_instances() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..12 {
            let n = rng.random_range(3..9usize);
            let g = generators::random_connected(n, 0.5, &mut rng, 0.3..3.0);
            let game = ndg_core::NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let tree = kruskal(game.graph()).unwrap();
            let lp3 = crate::lp_broadcast::enforce_tree_lp(&game, &tree).unwrap();
            let (state, _) = State::from_tree(&game, &tree).unwrap();
            let (lp1, stats) = enforce_state_cutting(&game, &state).unwrap();
            assert!(
                (lp3.cost - lp1.cost).abs() < 1e-5,
                "lp3 {} vs lp1 {} (rounds {})",
                lp3.cost,
                lp1.cost,
                stats.rounds
            );
        }
    }

    #[test]
    fn works_on_general_two_player_game() {
        // 2×3 grid, two crossing players sharing the middle column.
        let g = generators::grid_graph(2, 3, 1.0);
        let game = ndg_core::NetworkDesignGame::new(
            g,
            vec![
                Player {
                    source: NodeId(0),
                    terminal: NodeId(5),
                },
                Player {
                    source: NodeId(3),
                    terminal: NodeId(2),
                },
            ],
        )
        .unwrap();
        let tree = kruskal(game.graph()).unwrap();
        let (state, _) = State::from_tree(&game, &tree).unwrap();
        let (sol, _) = enforce_state_cutting(&game, &state).unwrap();
        assert!(ndg_core::is_equilibrium(&game, &state, &sol.subsidies));
        assert!(sol.cost >= 0.0);
    }

    #[test]
    fn zero_rounds_when_already_stable() {
        let g = generators::star_graph(5, 2.0);
        let game = ndg_core::NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let tree: Vec<EdgeId> = game.graph().edge_ids().collect();
        let (state, _) = State::from_tree(&game, &tree).unwrap();
        let (sol, stats) = enforce_state_cutting(&game, &state).unwrap();
        assert!(sol.cost < 1e-9);
        assert_eq!(stats.cuts_added, 0);
        assert_eq!(stats.rounds, 1);
    }

    #[test]
    fn cycle_instance_exact_value_small() {
        // Triangle path-tree: minimum subsidy 0.5 (matches LP(3) test).
        let g = generators::cycle_graph(3, 1.0);
        let game = ndg_core::NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let (state, _) = State::from_tree(&game, &[EdgeId(0), EdgeId(1)]).unwrap();
        let (sol, _) = enforce_state_cutting(&game, &state).unwrap();
        assert!((sol.cost - 0.5).abs() < 1e-6, "got {}", sol.cost);
    }
}
