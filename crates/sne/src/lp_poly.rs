//! LP (2): the polynomial-size reformulation of the enforcement LP.
//!
//! Instead of one constraint per alternative path, LP (2) embeds the
//! separation oracle as shortest-path potentials: for every player `i` and
//! node `v`, a variable `πᵢ(v)` lower-bounds the `Hᵢ`-shortest distance from
//! `sᵢ` to `v` via the triangle inequalities
//! `πᵢ(v) ≤ πᵢ(u) + (w_(u,v) − b_(u,v))/denᵢ(u,v)` over all adjacencies,
//! and the enforcement condition becomes `πᵢ(tᵢ) ≥ costᵢ(T; b)`.
//! Θ(n|V|) variables, Θ(n|E|) constraints — solvable in one simplex call.

use crate::{SneError, SneSolution};
use ndg_core::{NetworkDesignGame, State, SubsidyAssignment};
use ndg_graph::EdgeId;
use ndg_lp::{LinearProgram, LpStatus};
use std::collections::HashMap;

/// Solve LP (2) for an arbitrary game and target state.
pub fn enforce_state_poly(
    game: &NetworkDesignGame,
    state: &State,
) -> Result<SneSolution, SneError> {
    let g = game.graph();
    let n_nodes = g.node_count();
    let players = game.players();

    let mut lp = LinearProgram::new();
    // Subsidy variables on established edges.
    let established = state.established_edges();
    let mut var_of: HashMap<EdgeId, usize> = HashMap::new();
    for &e in &established {
        let v = lp.add_var(1.0, 0.0, g.weight(e))?;
        var_of.insert(e, v);
    }
    // π variables: πᵢ(v) ≥ 0 for v ≠ sᵢ; πᵢ(sᵢ) is fixed to 0 (no
    // variable). Objective coefficient 0.
    let mut pi: Vec<Vec<Option<usize>>> = Vec::with_capacity(players.len());
    for p in players {
        let mut row = Vec::with_capacity(n_nodes);
        for v in g.nodes() {
            if v == p.source {
                row.push(None);
            } else {
                row.push(Some(lp.add_var(0.0, 0.0, f64::INFINITY)?));
            }
        }
        pi.push(row);
    }

    // Triangle inequalities: for every player i and every directed
    // adjacency u → v through edge e:
    //   πᵢ(v) − πᵢ(u) + b_e/denᵢ(e) ≤ w_e/denᵢ(e).
    for (i, _) in players.iter().enumerate() {
        for (e, edge) in g.edges() {
            let den = (state.usage(e) + 1 - u32::from(state.uses(i, e))) as f64;
            for (u, v) in [(edge.u, edge.v), (edge.v, edge.u)] {
                let mut coeffs: Vec<(usize, f64)> = Vec::with_capacity(3);
                if let Some(vv) = pi[i][v.index()] {
                    coeffs.push((vv, 1.0));
                } else {
                    continue; // πᵢ(sᵢ) ≤ … is vacuous (it is 0 and all rhs ≥ 0)
                }
                if let Some(vu) = pi[i][u.index()] {
                    coeffs.push((vu, -1.0));
                }
                if let Some(&vb) = var_of.get(&e) {
                    coeffs.push((vb, 1.0 / den));
                }
                lp.add_le(coeffs, edge.w / den)?;
            }
        }
    }

    // Enforcement rows: πᵢ(tᵢ) + Σ_{a∈Tᵢ} b_a/n_a ≥ Σ_{a∈Tᵢ} w_a/n_a.
    for (i, p) in players.iter().enumerate() {
        let mut coeffs: Vec<(usize, f64)> = Vec::new();
        let mut rhs = 0.0;
        let vt = pi[i][p.terminal.index()].expect("terminal != source by game validation");
        coeffs.push((vt, 1.0));
        for &a in state.path(i) {
            let n_a = state.usage(a) as f64;
            rhs += g.weight(a) / n_a;
            if let Some(&vb) = var_of.get(&a) {
                coeffs.push((vb, 1.0 / n_a));
            }
        }
        lp.add_ge(coeffs, rhs)?;
    }

    let sol = ndg_lp::solve(&lp)?;
    if sol.status != LpStatus::Optimal {
        return Err(SneError::BadLpStatus(sol.status));
    }
    let mut b = SubsidyAssignment::zero(g);
    for (&e, &var) in &var_of {
        b.set(g, e, sol.x[var]);
    }
    if !ndg_core::is_equilibrium(game, state, &b) {
        return Err(SneError::VerificationFailed);
    }
    Ok(SneSolution::new(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndg_core::Player;
    use ndg_graph::{generators, kruskal, NodeId};

    #[test]
    fn matches_lp3_and_lp1_on_broadcast() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(53);
        for _ in 0..8 {
            let n = rng.random_range(3..7usize);
            let g = generators::random_connected(n, 0.5, &mut rng, 0.3..3.0);
            let game = ndg_core::NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
            let tree = kruskal(game.graph()).unwrap();
            let lp3 = crate::lp_broadcast::enforce_tree_lp(&game, &tree).unwrap();
            let (state, _) = State::from_tree(&game, &tree).unwrap();
            let lp2 = enforce_state_poly(&game, &state).unwrap();
            let (lp1, _) = crate::lp_general::enforce_state_cutting(&game, &state).unwrap();
            assert!(
                (lp3.cost - lp2.cost).abs() < 1e-5,
                "lp3 {} vs lp2 {}",
                lp3.cost,
                lp2.cost
            );
            assert!(
                (lp1.cost - lp2.cost).abs() < 1e-5,
                "lp1 {} vs lp2 {}",
                lp1.cost,
                lp2.cost
            );
        }
    }

    #[test]
    fn triangle_exact_value() {
        let g = generators::cycle_graph(3, 1.0);
        let game = ndg_core::NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let (state, _) = State::from_tree(&game, &[EdgeId(0), EdgeId(1)]).unwrap();
        let sol = enforce_state_poly(&game, &state).unwrap();
        assert!((sol.cost - 0.5).abs() < 1e-6, "got {}", sol.cost);
    }

    #[test]
    fn general_game_supported() {
        let g = generators::grid_graph(2, 2, 1.0);
        let game = ndg_core::NetworkDesignGame::new(
            g,
            vec![
                Player {
                    source: NodeId(0),
                    terminal: NodeId(3),
                },
                Player {
                    source: NodeId(1),
                    terminal: NodeId(2),
                },
            ],
        )
        .unwrap();
        let tree = kruskal(game.graph()).unwrap();
        let (state, _) = State::from_tree(&game, &tree).unwrap();
        let sol = enforce_state_poly(&game, &state).unwrap();
        assert!(ndg_core::is_equilibrium(&game, &state, &sol.subsidies));
    }
}
