//! Offline stand-in for `criterion` (API subset).
//!
//! Implements the benchmark-harness surface the workspace uses —
//! `benchmark_group`, `sample_size`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `criterion_group!`/`criterion_main!` —
//! with a plain wall-clock measurement loop. Each group's results are
//! printed to stdout and appended as JSON to
//! `target/criterion-shim/<group>.json` so baselines can be committed.
//!
//! When invoked by `cargo test` (criterion convention: a `--test` argument)
//! every benchmark body runs exactly once, as a smoke test.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id (criterion's `from_parameter`).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    /// Mean wall-clock nanoseconds per iteration, filled by [`Bencher::iter`].
    mean_ns: f64,
}

impl Bencher {
    /// Measure `f`: warm up, calibrate the per-sample iteration count so a
    /// sample takes ≥ ~1 ms, then record `samples` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.mean_ns = 0.0;
            return;
        }
        // Warm-up + calibration.
        let mut per_iter = {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed()
        };
        if per_iter < Duration::from_millis(1) {
            let t0 = Instant::now();
            for _ in 0..8 {
                black_box(f());
            }
            per_iter = t0.elapsed() / 8;
        }
        let iters_per_sample = (Duration::from_millis(1).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1_000_000) as u64;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let budget = Duration::from_secs(3);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            total += t0.elapsed();
            iters += iters_per_sample;
            if total > budget {
                break;
            }
        }
        self.mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    }
}

/// One finished measurement.
#[derive(Clone, Debug)]
struct Record {
    id: String,
    mean_ns: f64,
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    records: Vec<Record>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let mut b = Bencher {
            samples: self.sample_size,
            test_mode: self.criterion.test_mode,
            mean_ns: f64::NAN,
        };
        f(&mut b);
        self.report(id, b.mean_ns);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_id();
        let mut b = Bencher {
            samples: self.sample_size,
            test_mode: self.criterion.test_mode,
            mean_ns: f64::NAN,
        };
        f(&mut b, input);
        self.report(id, b.mean_ns);
        self
    }

    fn report(&mut self, id: String, mean_ns: f64) {
        if self.criterion.test_mode {
            println!("{}/{}: ok (test mode)", self.name, id);
        } else {
            println!("{}/{}: {:.3} ms/iter", self.name, id, mean_ns / 1.0e6);
        }
        self.records.push(Record { id, mean_ns });
    }

    /// Write the group's JSON report.
    pub fn finish(&mut self) {
        if self.criterion.test_mode || self.records.is_empty() {
            return;
        }
        let dir = report_dir();
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let mut json = String::from("{\n");
        json.push_str(&format!("  \"group\": \"{}\",\n", self.name));
        json.push_str("  \"benchmarks\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            json.push_str(&format!(
                "    {{ \"id\": \"{}\", \"mean_ns\": {:.1} }}{}\n",
                r.id,
                r.mean_ns,
                if i + 1 < self.records.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        let _ = std::fs::write(dir.join(format!("{}.json", self.name)), json);
    }
}

/// Where JSON reports land: `<workspace>/target/criterion-shim`, located
/// via `CARGO_TARGET_DIR` or by walking up from the bench's working
/// directory to the `Cargo.lock` root (cargo runs benches with the
/// *package* root as CWD, which for workspace members is not where
/// `target/` lives).
fn report_dir() -> std::path::PathBuf {
    if let Ok(t) = std::env::var("CARGO_TARGET_DIR") {
        return std::path::Path::new(&t).join("criterion-shim");
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| ".".into());
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join("target").join("criterion-shim");
        }
        if !dir.pop() {
            return std::path::Path::new("target").join("criterion-shim");
        }
    }
}

/// Top-level harness state.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // criterion convention: `cargo test` passes `--test`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            records: Vec::new(),
            criterion: self,
        }
    }
}

/// Declare a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("dynamics", 32).into_id(), "dynamics/32");
        assert_eq!(BenchmarkId::from_parameter(7).into_id(), "7");
        assert_eq!("plain".into_id(), "plain");
    }

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion { test_mode: false };
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(5);
        group.bench_function("spin", |b| {
            b.iter(|| {
                let mut x = 0u64;
                for i in 0..1000 {
                    x = x.wrapping_add(black_box(i));
                }
                x
            })
        });
        let mean = group.records[0].mean_ns;
        assert!(mean.is_finite() && mean > 0.0);
    }
}
