//! Offline stand-in for `rayon` (API subset, sequential execution).
//!
//! The build container has no registry access. Call sites in this workspace
//! use `into_par_iter()`/`par_iter()` with a handful of adapters, so the
//! shim wraps a sequential iterator in [`iter::ParIter`] and reproduces
//! rayon's method signatures (including the two-argument `reduce`). All
//! reductions used here are deterministic under sequential evaluation.
//! Code that genuinely needs parallelism uses `std::thread::scope`
//! directly (see `ndg-core::enumerate`).

/// Parallel-iterator entry points, mapped onto sequential `std` iterators.
pub mod iter {
    /// Sequential iterator wearing rayon's `ParallelIterator` interface.
    pub struct ParIter<I>(I);

    impl<I: Iterator> ParIter<I> {
        /// rayon: `map`.
        pub fn map<T, F: FnMut(I::Item) -> T>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
            ParIter(self.0.map(f))
        }

        /// rayon: `filter`.
        pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
            ParIter(self.0.filter(f))
        }

        /// rayon: `filter_map`.
        pub fn filter_map<T, F: FnMut(I::Item) -> Option<T>>(
            self,
            f: F,
        ) -> ParIter<std::iter::FilterMap<I, F>> {
            ParIter(self.0.filter_map(f))
        }

        /// rayon: `flat_map`.
        pub fn flat_map<T: IntoIterator, F: FnMut(I::Item) -> T>(
            self,
            f: F,
        ) -> ParIter<std::iter::FlatMap<I, T, F>> {
            ParIter(self.0.flat_map(f))
        }

        /// rayon: `reduce` with identity + associative op.
        pub fn reduce<ID, OP>(mut self, identity: ID, op: OP) -> I::Item
        where
            ID: Fn() -> I::Item,
            OP: Fn(I::Item, I::Item) -> I::Item,
        {
            let mut acc = identity();
            for x in self.0.by_ref() {
                acc = op(acc, x);
            }
            acc
        }

        /// rayon: `min_by_key`.
        pub fn min_by_key<K: Ord, F: FnMut(&I::Item) -> K>(self, f: F) -> Option<I::Item> {
            self.0.min_by_key(f)
        }

        /// rayon: `max_by_key`.
        pub fn max_by_key<K: Ord, F: FnMut(&I::Item) -> K>(self, f: F) -> Option<I::Item> {
            self.0.max_by_key(f)
        }

        /// rayon: `min_by`.
        pub fn min_by<F>(self, f: F) -> Option<I::Item>
        where
            F: FnMut(&I::Item, &I::Item) -> std::cmp::Ordering,
        {
            self.0.min_by(f)
        }

        /// rayon: `max_by`.
        pub fn max_by<F>(self, f: F) -> Option<I::Item>
        where
            F: FnMut(&I::Item, &I::Item) -> std::cmp::Ordering,
        {
            self.0.max_by(f)
        }

        /// rayon: `sum`.
        pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
            self.0.sum()
        }

        /// rayon: `count`.
        pub fn count(self) -> usize {
            self.0.count()
        }

        /// rayon: `any`.
        pub fn any<F: FnMut(I::Item) -> bool>(self, f: F) -> bool {
            let mut iter = self.0;
            iter.any(f)
        }

        /// rayon: `all`.
        pub fn all<F: FnMut(I::Item) -> bool>(self, f: F) -> bool {
            let mut iter = self.0;
            iter.all(f)
        }

        /// rayon: `for_each`.
        pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
            self.0.for_each(f)
        }

        /// rayon: `collect` (via `FromIterator`, so `Vec` and `Result` work).
        pub fn collect<C: FromIterator<I::Item>>(self) -> C {
            self.0.collect()
        }
    }

    /// `into_par_iter()` for owned collections and ranges.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Sequential fallback: wrap the plain iterator.
        fn into_par_iter(self) -> ParIter<Self::IntoIter> {
            ParIter(self.into_iter())
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// `par_iter()` for `&collection`.
    pub trait IntoParallelRefIterator<'a> {
        /// Borrowed-item iterator type.
        type Iter;
        /// Sequential fallback: wrap the shared-reference iterator.
        fn par_iter(&'a self) -> ParIter<Self::Iter>;
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for T
    where
        &'a T: IntoIterator,
    {
        type Iter = <&'a T as IntoIterator>::IntoIter;

        fn par_iter(&'a self) -> ParIter<Self::Iter> {
            ParIter(self.into_iter())
        }
    }
}

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

/// The number of worker threads a real rayon pool would use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_and_vec_adapters_work() {
        let best = (0..10usize)
            .into_par_iter()
            .filter_map(|i| if i % 2 == 1 { Some(i * 3) } else { None })
            .min_by_key(|&x| x);
        assert_eq!(best, Some(3));

        let v = vec![3, 1, 2];
        let doubled: Vec<i32> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 4]);

        let v2 = [1, 2, 3];
        let sum: i32 = v2.par_iter().map(|&x| x).sum();
        assert_eq!(sum, 6);
    }

    #[test]
    fn two_arg_reduce_matches_rayon_shape() {
        let m = (0..5usize)
            .into_par_iter()
            .map(|i| i as f64)
            .reduce(|| 1.0, f64::max);
        assert_eq!(m, 4.0);
        let empty = (0..0usize)
            .into_par_iter()
            .map(|i| i as f64)
            .reduce(|| 1.0, f64::max);
        assert_eq!(empty, 1.0);
    }

    #[test]
    fn collect_result_short_circuits() {
        let ok: Result<Vec<i32>, String> = (0..4).into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap(), vec![0, 1, 2, 3]);
        let err: Result<Vec<i32>, String> = (0..4)
            .into_par_iter()
            .map(|i| if i == 2 { Err("boom".into()) } else { Ok(i) })
            .collect();
        assert!(err.is_err());
    }
}
