//! Offline stand-in for `rayon` (API subset), now genuinely parallel.
//!
//! The build container has no registry access, so this shim reproduces the
//! `par_iter()` / `into_par_iter()` surface the workspace uses and
//! delegates the actual work distribution to [`ndg_exec`]. Unlike real
//! rayon (lazy splittable producers), the shim is *eager*: the source is
//! collected into a `Vec` up front and each adapter (`map`, `filter`,
//! `filter_map`, `flat_map`) fans its closure out across the executor's
//! scoped threads, preserving input order. Reductions (`reduce`,
//! `min_by_key`, `sum`, `collect`, …) then run sequentially over the
//! already-materialized results, so every pipeline returns **exactly** what
//! the sequential evaluation would — for any thread count, including the
//! `NDG_THREADS=1` exact-sequential mode.
//!
//! The eager model costs one intermediate `Vec` per adapter, which is
//! irrelevant for the workspace's call sites (tens-to-thousands of items,
//! each carrying a Dijkstra or an LP solve).

/// Parallel-iterator entry points, fanned out through [`ndg_exec`].
pub mod iter {
    use ndg_exec::Executor;

    /// Materialized item sequence wearing rayon's `ParallelIterator`
    /// interface. Adapters evaluate in parallel, order-preserving;
    /// reductions are sequential over the materialized items.
    pub struct ParIter<T>(Vec<T>);

    impl<T> ParIter<T> {
        /// Wrap an already-collected item vector.
        pub fn from_vec(items: Vec<T>) -> Self {
            ParIter(items)
        }
    }

    impl<T: Send> ParIter<T> {
        /// rayon: `map` — `f` runs across the executor's threads.
        pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParIter<U> {
            ParIter(Executor::from_env().par_map_vec(self.0, f))
        }

        /// rayon: `filter` — the predicate runs in parallel; survivors keep
        /// their order.
        pub fn filter<F: Fn(&T) -> bool + Sync>(self, f: F) -> ParIter<T> {
            ParIter(
                Executor::from_env()
                    .par_map_vec(self.0, |x| if f(&x) { Some(x) } else { None })
                    .into_iter()
                    .flatten()
                    .collect(),
            )
        }

        /// rayon: `filter_map`.
        pub fn filter_map<U: Send, F: Fn(T) -> Option<U> + Sync>(self, f: F) -> ParIter<U> {
            ParIter(
                Executor::from_env()
                    .par_map_vec(self.0, f)
                    .into_iter()
                    .flatten()
                    .collect(),
            )
        }

        /// rayon: `flat_map` — each item's sub-sequence is produced in
        /// parallel, then spliced in input order.
        pub fn flat_map<I, F>(self, f: F) -> ParIter<I::Item>
        where
            I: IntoIterator,
            I::Item: Send,
            F: Fn(T) -> I + Sync,
        {
            ParIter(
                Executor::from_env()
                    .par_map_vec(self.0, |x| f(x).into_iter().collect::<Vec<_>>())
                    .into_iter()
                    .flatten()
                    .collect(),
            )
        }

        /// rayon: `reduce` with identity + associative op. Runs as the
        /// sequential left fold so the result is bit-identical to the
        /// sequential pipeline even for merely-approximately-associative
        /// float ops (the expensive part — the preceding adapters — was
        /// parallel).
        pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
        where
            ID: Fn() -> T,
            OP: Fn(T, T) -> T,
        {
            let mut acc = identity();
            for x in self.0 {
                acc = op(acc, x);
            }
            acc
        }

        /// rayon: `min_by_key`.
        pub fn min_by_key<K: Ord, F: FnMut(&T) -> K>(self, f: F) -> Option<T> {
            self.0.into_iter().min_by_key(f)
        }

        /// rayon: `max_by_key`.
        pub fn max_by_key<K: Ord, F: FnMut(&T) -> K>(self, f: F) -> Option<T> {
            self.0.into_iter().max_by_key(f)
        }

        /// rayon: `min_by`.
        pub fn min_by<F>(self, f: F) -> Option<T>
        where
            F: FnMut(&T, &T) -> std::cmp::Ordering,
        {
            self.0.into_iter().min_by(f)
        }

        /// rayon: `max_by`.
        pub fn max_by<F>(self, f: F) -> Option<T>
        where
            F: FnMut(&T, &T) -> std::cmp::Ordering,
        {
            self.0.into_iter().max_by(f)
        }

        /// rayon: `sum`.
        pub fn sum<S: std::iter::Sum<T>>(self) -> S {
            self.0.into_iter().sum()
        }

        /// rayon: `count`.
        pub fn count(self) -> usize {
            self.0.len()
        }

        /// rayon: `any`.
        pub fn any<F: FnMut(T) -> bool>(self, f: F) -> bool {
            let mut iter = self.0.into_iter();
            iter.any(f)
        }

        /// rayon: `all`.
        pub fn all<F: FnMut(T) -> bool>(self, f: F) -> bool {
            let mut iter = self.0.into_iter();
            iter.all(f)
        }

        /// rayon: `for_each` (sequential, in order: callers use it for
        /// order-sensitive side effects).
        pub fn for_each<F: FnMut(T)>(self, f: F) {
            self.0.into_iter().for_each(f)
        }

        /// rayon: `collect` (via `FromIterator`, so `Vec` and `Result`
        /// work; `Result` short-circuits at the first error in input
        /// order, matching the sequential pipeline).
        pub fn collect<C: FromIterator<T>>(self) -> C {
            self.0.into_iter().collect()
        }
    }

    /// `into_par_iter()` for owned collections and ranges.
    pub trait IntoParallelIterator: IntoIterator + Sized
    where
        Self::Item: Send,
    {
        /// Materialize the source, ready for parallel adapters.
        fn into_par_iter(self) -> ParIter<Self::Item> {
            ParIter(self.into_iter().collect())
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T where T::Item: Send {}

    /// `par_iter()` for `&collection`.
    pub trait IntoParallelRefIterator<'a> {
        /// Borrowed item type.
        type Item: Send;
        /// Materialize the borrowed items, ready for parallel adapters.
        fn par_iter(&'a self) -> ParIter<Self::Item>;
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for T
    where
        &'a T: IntoIterator,
        <&'a T as IntoIterator>::Item: Send,
    {
        type Item = <&'a T as IntoIterator>::Item;

        fn par_iter(&'a self) -> ParIter<Self::Item> {
            ParIter(self.into_iter().collect())
        }
    }
}

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

/// The number of worker threads the executor behind this shim uses
/// (`NDG_THREADS` override, else hardware parallelism).
pub fn current_num_threads() -> usize {
    ndg_exec::default_threads()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_and_vec_adapters_work() {
        let best = (0..10usize)
            .into_par_iter()
            .filter_map(|i| if i % 2 == 1 { Some(i * 3) } else { None })
            .min_by_key(|&x| x);
        assert_eq!(best, Some(3));

        let v = vec![3, 1, 2];
        let doubled: Vec<i32> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 4]);

        let v2 = [1, 2, 3];
        let sum: i32 = v2.par_iter().map(|&x| x).sum();
        assert_eq!(sum, 6);
    }

    #[test]
    fn two_arg_reduce_matches_rayon_shape() {
        let m = (0..5usize)
            .into_par_iter()
            .map(|i| i as f64)
            .reduce(|| 1.0, f64::max);
        assert_eq!(m, 4.0);
        let empty = (0..0usize)
            .into_par_iter()
            .map(|i| i as f64)
            .reduce(|| 1.0, f64::max);
        assert_eq!(empty, 1.0);
    }

    #[test]
    fn collect_result_short_circuits() {
        let ok: Result<Vec<i32>, String> = (0..4).into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap(), vec![0, 1, 2, 3]);
        let err: Result<Vec<i32>, String> = (0..4)
            .into_par_iter()
            .map(|i| if i == 2 { Err("boom".into()) } else { Ok(i) })
            .collect();
        assert!(err.is_err());
    }

    #[test]
    fn adapters_preserve_order_under_parallel_evaluation() {
        // Enough items that the default executor actually splits them.
        let out: Vec<usize> = (0..10_000usize)
            .into_par_iter()
            .map(|i| i * 2)
            .filter(|&x| x % 3 != 0)
            .flat_map(|x| [x, x + 1])
            .collect();
        let want: Vec<usize> = (0..10_000usize)
            .map(|i| i * 2)
            .filter(|&x| x % 3 != 0)
            .flat_map(|x| [x, x + 1])
            .collect();
        assert_eq!(out, want);
    }
}
