//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build container has no registry access, so the workspace vendors the
//! small slice of `rand` it actually uses: `StdRng::seed_from_u64`,
//! `Rng::random_range` over integer/float ranges, `Rng::random_bool`, and
//! `SliceRandom::shuffle`. The backend is xoshiro256++ seeded through
//! SplitMix64 — deterministic across platforms, which is all the seeded
//! tests and experiment binaries rely on (they assert properties of the
//! sampled instances, never exact streams).

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, as in `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, as in `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`3..9usize`, `0.0..4.0`, `0.0..=w`, …).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample with success probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// `u64` → uniform `f64` in `[0, 1)` (53 mantissa bits).
#[inline]
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can produce one uniform sample.
pub trait SampleRange<T> {
    /// Draw a single sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let width = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Modulo bias is < width/2^64: irrelevant for test workloads.
                self.start.wrapping_add((rng.next_u64() % width) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let width = (end as u128).wrapping_sub(start as u128) as u128 + 1;
                if width > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % width as u64) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                start + (end - start) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Concrete RNGs.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the deterministic default RNG of this workspace.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias: the workspace has no separate small RNG.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 key expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (`shuffle`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension trait, as in `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly random element (`None` on an empty slice).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

/// `use rand::prelude::*;` — the conventional glob import.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_across_clones() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3..9usize);
            assert!((3..9).contains(&x));
            let y = rng.random_range(0.25..4.0);
            assert!((0.25..4.0).contains(&y));
            let z = rng.random_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&z));
            let w = rng.random_range(0..7u32);
            assert!(w < 7);
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.3)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.3).abs() < 0.02, "freq {freq}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
