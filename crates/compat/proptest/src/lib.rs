//! Offline stand-in for `proptest` (API subset).
//!
//! Supports the slice of proptest this workspace uses: the `proptest!`
//! macro with `arg in range` bindings over integer/float ranges,
//! `ProptestConfig::with_cases`, `prop_assert!`, `prop_assert_eq!` and
//! `prop_assume!`. Case values are sampled deterministically (seeded by the
//! test name), so failures are reproducible; there is no shrinking — the
//! failing case's inputs are printed instead.

use std::ops::{Range, RangeInclusive};

pub use rand;

/// Runner configuration (`ProptestConfig`).
pub mod test_runner {
    /// Subset of proptest's `Config`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

/// Why a single case did not complete.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

/// A value generator: the only strategies used in-tree are ranges.
pub trait Strategy {
    /// Generated value type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut rand::rngs::StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut rand::rngs::StdRng) -> $t {
                use rand::Rng;
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut rand::rngs::StdRng) -> $t {
                use rand::Rng;
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Collection strategies (`proptest::collection` subset).
pub mod collection {
    use super::Strategy;
    use std::ops::Range;

    /// Strategy producing `Vec`s of values drawn from an element
    /// strategy, with length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec`: vectors of `elem` values with a
    /// length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut rand::rngs::StdRng) -> Vec<S::Value> {
            use rand::Rng;
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// FNV-1a over the test name: a stable per-property seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The `proptest!` macro: runs each property for `cases` deterministic
/// samples of its `arg in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$attr:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                $crate::run_cases(
                    stringify!($name),
                    config.cases,
                    |__proptest_rng| {
                        $(let $arg = $crate::Strategy::sample(&($strat), __proptest_rng);)+
                        let mut __desc = String::new();
                        $(
                            __desc.push_str(&format!(
                                "{} = {:?}; ",
                                stringify!($arg),
                                &$arg
                            ));
                        )+
                        (
                            __desc,
                            move || -> ::std::result::Result<(), $crate::TestCaseError> {
                                $body
                                #[allow(unreachable_code)]
                                Ok(())
                            },
                        )
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$attr:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $( $(#[$attr])* fn $name( $($arg in $strat),+ ) $body )*
        }
    };
}

/// Drive `cases` deterministic cases of one property; used by `proptest!`.
pub fn run_cases<F, G>(name: &str, cases: u32, mut make_case: F)
where
    F: FnMut(&mut rand::rngs::StdRng) -> (String, G),
    G: FnOnce() -> Result<(), TestCaseError>,
{
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed_for(name));
    for case in 0..cases {
        let (desc, body) = make_case(&mut rng);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
        match outcome {
            Ok(Ok(())) | Ok(Err(TestCaseError::Reject)) => {}
            Err(payload) => {
                eprintln!("proptest '{name}' failed at case {case}: {desc}");
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// `prop_assert!`: assert inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// `prop_assert_eq!`: equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// `prop_assert_ne!`: inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// `prop_assume!`: reject the current case without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_sample_in_bounds(n in 2usize..40, x in 0.5f64..2.0) {
            prop_assert!((2..40).contains(&n));
            prop_assert!((0.5..2.0).contains(&x), "x = {}", x);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(crate::seed_for("abc"), crate::seed_for("abc"));
        assert_ne!(crate::seed_for("abc"), crate::seed_for("abd"));
    }
}
