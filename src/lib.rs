//! `subsidy-games` — reproduction of *Enforcing efficient equilibria in
//! network design games via subsidies* (Augustine, Caragiannis, Fanelli,
//! Kalaitzis; SPAA 2012, arXiv:1104.4423).
//!
//! This facade re-exports the workspace crates under stable names:
//!
//! * [`graph`] — graph substrate (MST, Dijkstra, rooted trees, harmonics);
//! * [`lp`] — dense simplex + cutting-plane driver;
//! * [`core`] — network design games, subsidies, equilibria, dynamics;
//! * [`canon`] — instance canonicalization: isomorphism-invariant
//!   relabeling for cache keying and scenario dedup;
//! * [`sne`] — Stable Network Enforcement: LPs (1)–(3) and Theorem 6;
//! * [`aon`] — all-or-nothing subsidies (Section 5);
//! * [`snd`] — Stable Network Design solvers and price-of-stability tools;
//! * [`serve`] — the serving layer: `ndg1` wire codec, sharded result
//!   cache, and the batched multi-threaded request engine (TCP + stdio);
//! * [`reductions`] — the hardness gadgets of Theorems 3, 5, 12 with exact
//!   solvers for their source problems.
//!
//! # Quickstart
//!
//! Enforce a minimum spanning tree as a Nash equilibrium with Theorem 6
//! subsidies and verify the `wgt(T)/e` budget:
//!
//! ```
//! use subsidy_games::core::NetworkDesignGame;
//! use subsidy_games::graph::{generators, kruskal, NodeId};
//! use subsidy_games::sne::theorem6;
//!
//! // A unit cycle: the classic Theorem 11 instance.
//! let g = generators::cycle_graph(9, 1.0);
//! let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
//! let mst = kruskal(game.graph()).unwrap();
//!
//! let sol = theorem6::enforce(&game, &mst).unwrap();
//! let budget = game.graph().weight_of(&mst) / std::f64::consts::E;
//! assert!(sol.cost <= budget + 1e-9);
//! ```

pub use ndg_aon as aon;
pub use ndg_canon as canon;
pub use ndg_core as core;
pub use ndg_graph as graph;
pub use ndg_lp as lp;
pub use ndg_reductions as reductions;
pub use ndg_serve as serve;
pub use ndg_snd as snd;
pub use ndg_sne as sne;
