//! Cross-crate integration: the three hardness reductions, end to end,
//! driven through the facade crate.

use subsidy_games::reductions::{
    binpack_reduction,
    binpacking::BinPacking,
    build_is_reduction, build_sat_reduction, dpll,
    independent_set::max_independent_set,
    sat::{Clause, Cnf, Literal},
    sat_reduction::DEFAULT_K,
    solve_bin_packing,
};

#[test]
fn theorem_3_biconditional() {
    let solvable = BinPacking {
        sizes: vec![2, 2, 4],
        bins: 2,
        capacity: 4,
    };
    let unsolvable = BinPacking {
        sizes: vec![10, 10, 4],
        bins: 2,
        capacity: 12,
    };
    for inst in [solvable, unsolvable] {
        let packing = solve_bin_packing(&inst).is_some();
        let red = binpack_reduction::build(&inst);
        assert_eq!(packing, red.equilibrium_assignment().is_some());
    }
}

#[test]
fn theorem_5_weight_formula() {
    use rand::prelude::*;
    use subsidy_games::graph::generators::random_3_regular;
    let mut rng = StdRng::seed_from_u64(55);
    let h = random_3_regular(6, &mut rng, 1.0);
    let red = build_is_reduction(&h, 0.05);
    let max_is = max_independent_set(&h);
    let tree = red.tree_for_independent_set(&max_is);
    assert!(red.tree_is_equilibrium(&tree));
    assert!(
        (red.game.graph().weight_of(&tree) - red.equilibrium_weight(max_is.len())).abs() < 1e-9
    );
}

#[test]
fn theorem_12_tracks_satisfiability() {
    let cnf = Cnf {
        num_vars: 3,
        clauses: vec![Clause([Literal::pos(0), Literal::pos(1), Literal::neg(2)])],
    };
    let red = build_sat_reduction(&cnf, DEFAULT_K).unwrap();
    let rt = red.rooted_tree();
    let truth = dpll(&cnf).expect("satisfiable");
    assert!(red.enforces(&rt, &red.light_assignment_for(&truth)));
    // The unique falsifying assignment (x=0, y=0, z=1) must fail.
    let falsify = vec![false, false, true];
    assert!(!cnf.eval(&falsify));
    assert!(!red.enforces(&rt, &red.light_assignment_for(&falsify)));
}
