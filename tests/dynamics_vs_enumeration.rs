//! Cross-crate integration: best-response dynamics, exhaustive
//! enumeration and the SND pipelines tell one consistent story.

use rand::prelude::*;
use subsidy_games::core::{
    dynamics_from_tree, equilibrium_trees, MoveOrder, NetworkDesignGame, SubsidyAssignment,
};
use subsidy_games::graph::{generators, kruskal, mst_weight, NodeId};
use subsidy_games::snd;

#[test]
fn dynamics_equilibria_appear_in_enumeration() {
    let mut rng = StdRng::seed_from_u64(71);
    for _ in 0..6 {
        let n = rng.random_range(4..7usize);
        let g = generators::random_connected(n, 0.5, &mut rng, 0.3..3.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        let mst = kruskal(game.graph()).unwrap();
        let b = SubsidyAssignment::zero(game.graph());
        let res = dynamics_from_tree(&game, &mst, &b, MoveOrder::RoundRobin, 10_000).unwrap();
        assert!(res.converged);
        let established = res.state.established_edges();
        if game.graph().is_spanning_tree(&established) {
            let eqs = equilibrium_trees(&game, &b, 1_000_000).unwrap();
            assert!(eqs.iter().any(|t| t.edges == established));
        }
    }
}

#[test]
fn snd_budget_zero_matches_enumeration_and_heuristic() {
    let mut rng = StdRng::seed_from_u64(73);
    for _ in 0..4 {
        let n = rng.random_range(4..7usize);
        let g = generators::random_connected(n, 0.5, &mut rng, 0.3..3.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
        // Exhaustive SND at budget 0 = best unsubsidized equilibrium tree.
        let exact = snd::exhaustive::min_weight_within_budget(&game, 0.0, 1_000_000).unwrap();
        let b0 = SubsidyAssignment::zero(game.graph());
        let best = subsidy_games::core::best_equilibrium_tree(&game, &b0, 1_000_000)
            .unwrap()
            .unwrap();
        assert!((exact.weight - best.weight).abs() < 1e-6);
        // Heuristic never undercuts the exhaustive optimum.
        let heur = snd::heuristic::design_with_budget(&game, 0.0).unwrap();
        assert!(heur.weight >= exact.weight - 1e-6);
        // Generous budget: both give the MST.
        let opt = mst_weight(game.graph()).unwrap();
        let generous = snd::heuristic::design_with_budget(&game, opt).unwrap();
        assert!((generous.weight - opt).abs() < 1e-9);
    }
}

#[test]
fn pos_pipeline_bounds() {
    let mut rng = StdRng::seed_from_u64(79);
    let g = generators::random_connected(6, 0.5, &mut rng, 0.3..3.0);
    let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
    let pos = snd::pos::exact_pos(&game, 1_000_000).unwrap();
    let (br, hn) = snd::pos::br_from_opt_bound(&game).unwrap();
    assert!((1.0..=br + 1e-9).contains(&pos));
    assert!(br <= hn + 1e-9);
    let at_budget =
        snd::pos::pos_with_budget_fraction(&game, 1.0 / std::f64::consts::E, 1_000_000).unwrap();
    assert!((at_budget - 1.0).abs() < 1e-9);
}
