//! Failure injection across the workspace: every malformed input errors
//! cleanly instead of panicking.

use subsidy_games::aon;
use subsidy_games::core::{GameError, NetworkDesignGame, Player, State, StateError};
use subsidy_games::graph::{generators, Graph, GraphError, NodeId};
use subsidy_games::lp::{LinearProgram, LpStatus};
use subsidy_games::sne;

#[test]
fn disconnected_graphs_error_cleanly() {
    let mut g = Graph::new(4);
    g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
    assert!(matches!(
        NetworkDesignGame::broadcast(g.clone(), NodeId(0)),
        Err(GameError::Disconnected)
    ));
    assert_eq!(
        subsidy_games::graph::kruskal(&g),
        Err(GraphError::Disconnected)
    );
    assert!(matches!(
        subsidy_games::core::spanning_trees(&g, 10),
        Err(subsidy_games::core::EnumError::Disconnected)
    ));
}

#[test]
fn degenerate_games_rejected() {
    assert!(matches!(
        NetworkDesignGame::broadcast(Graph::new(1), NodeId(0)),
        Err(GameError::TooSmall)
    ));
    let g = generators::path_graph(3, 1.0);
    assert!(matches!(
        NetworkDesignGame::new(
            g,
            vec![Player {
                source: NodeId(1),
                terminal: NodeId(1)
            }]
        ),
        Err(GameError::TrivialPlayer { .. })
    ));
}

#[test]
fn bad_targets_rejected_by_every_solver() {
    let g = generators::cycle_graph(5, 1.0);
    let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
    let not_a_tree = vec![subsidy_games::graph::EdgeId(0)];
    assert!(matches!(
        sne::lp_broadcast::enforce_tree_lp(&game, &not_a_tree),
        Err(sne::SneError::NotASpanningTree)
    ));
    assert!(matches!(
        sne::theorem6::enforce(&game, &not_a_tree),
        Err(sne::SneError::NotASpanningTree)
    ));
    assert!(matches!(
        aon::exact::min_aon_subsidy(&game, &not_a_tree, 100),
        Err(aon::AonError::NotASpanningTree)
    ));
    assert!(matches!(
        State::from_tree(&game, &not_a_tree),
        Err(StateError::NotASpanningTree)
    ));
}

#[test]
fn lp_failure_statuses_are_reported_not_panicked() {
    // Infeasible.
    let mut lp = LinearProgram::new();
    let x = lp.add_var(1.0, 0.0, 1.0).unwrap();
    lp.add_ge(vec![(x, 1.0)], 5.0).unwrap();
    assert_eq!(
        subsidy_games::lp::solve(&lp).unwrap().status,
        LpStatus::Infeasible
    );
    // Unbounded.
    let mut lp2 = LinearProgram::new();
    lp2.add_var(-1.0, 0.0, f64::INFINITY).unwrap();
    assert_eq!(
        subsidy_games::lp::solve(&lp2).unwrap().status,
        LpStatus::Unbounded
    );
}

#[test]
fn zero_weight_cycles_are_handled() {
    // A zero-weight triangle plus a real edge: equilibria may contain
    // zero-cycles; tree machinery must still work on the tree subsets.
    let mut g = Graph::new(4);
    let e0 = g.add_edge(NodeId(0), NodeId(1), 0.0).unwrap();
    let e1 = g.add_edge(NodeId(1), NodeId(2), 0.0).unwrap();
    let _e2 = g.add_edge(NodeId(2), NodeId(0), 0.0).unwrap();
    let e3 = g.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
    let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
    let tree = vec![e0, e1, e3];
    let sol = sne::theorem6::enforce(&game, &tree).unwrap();
    // The only positive weight is the leaf edge used by one player; its
    // layer has a single heavy edge with m = 1 ⇒ subsidy 1/e.
    assert!((sol.cost - 1.0 / std::f64::consts::E).abs() < 1e-9);
}

#[test]
fn reduction_builders_validate_inputs() {
    use subsidy_games::reductions::sat::{Clause, Cnf, Literal};
    use subsidy_games::reductions::sat_reduction::{build, SatReductionError, DEFAULT_K};
    let empty = Cnf {
        num_vars: 3,
        clauses: vec![],
    };
    assert_eq!(
        build(&empty, DEFAULT_K).unwrap_err(),
        SatReductionError::EmptyFormula
    );
    let degenerate = Cnf {
        num_vars: 1,
        clauses: vec![Clause([Literal::pos(0), Literal::neg(0), Literal::pos(0)])],
    };
    assert_eq!(
        build(&degenerate, DEFAULT_K).unwrap_err(),
        SatReductionError::NotThreeSatFour
    );
}
