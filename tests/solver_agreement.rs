//! Cross-crate integration: the four SNE solvers agree where they should.
//!
//! LP (1) (cutting planes), LP (2) (polynomial) and LP (3) (broadcast)
//! compute the same exact optimum; Theorem 6 is an upper bound within
//! `wgt(T)/e`; every output certifies as an equilibrium under both the
//! Lemma 2 checker and the exact best-response checker.

use rand::prelude::*;
use subsidy_games::core::{is_equilibrium, is_tree_equilibrium, NetworkDesignGame, State};
use subsidy_games::graph::{generators, kruskal, NodeId, RootedTree};
use subsidy_games::sne::{
    BroadcastLpSolver, CuttingPlaneSolver, PolyLpSolver, SneSolver, Theorem6Solver,
};

fn random_game(n: usize, seed: u64) -> (NetworkDesignGame, Vec<subsidy_games::graph::EdgeId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = generators::random_connected(n, 0.5, &mut rng, 0.2..3.0);
    let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
    let tree = kruskal(game.graph()).unwrap();
    (game, tree)
}

#[test]
fn all_solvers_agree_and_certify() {
    for seed in 0..6u64 {
        let (game, tree) = random_game(4 + seed as usize % 4, 9000 + seed);
        let lp3 = BroadcastLpSolver.solve(&game, &tree).unwrap();
        let lp1 = CuttingPlaneSolver.solve(&game, &tree).unwrap();
        let lp2 = PolyLpSolver.solve(&game, &tree).unwrap();
        let t6 = Theorem6Solver.solve(&game, &tree).unwrap();

        assert!(
            (lp3.cost - lp1.cost).abs() < 1e-5,
            "lp3 {} vs lp1 {}",
            lp3.cost,
            lp1.cost
        );
        assert!(
            (lp3.cost - lp2.cost).abs() < 1e-5,
            "lp3 {} vs lp2 {}",
            lp3.cost,
            lp2.cost
        );
        assert!(lp3.cost <= t6.cost + 1e-6, "LP must not exceed Theorem 6");
        assert!(
            t6.cost <= game.graph().weight_of(&tree) / std::f64::consts::E + 1e-7,
            "Theorem 6 bound"
        );

        let rt = RootedTree::new(game.graph(), &tree, NodeId(0)).unwrap();
        let (state, _) = State::from_tree(&game, &tree).unwrap();
        for sol in [&lp3, &lp1, &lp2, &t6] {
            assert!(is_tree_equilibrium(&game, &rt, &sol.subsidies));
            assert!(is_equilibrium(&game, &state, &sol.subsidies));
        }
    }
}

#[test]
fn theorem_11_family_sandwich() {
    use subsidy_games::sne::lower_bound::{analytic_lower_bound, cycle_instance};
    for n in [5usize, 9, 17] {
        let (game, tree) = cycle_instance(n);
        let lp = BroadcastLpSolver.solve(&game, &tree).unwrap();
        let t6 = Theorem6Solver.solve(&game, &tree).unwrap();
        assert!(lp.cost >= analytic_lower_bound(n) - 1e-6);
        assert!(lp.cost <= t6.cost + 1e-6);
        assert!(t6.cost <= n as f64 / std::f64::consts::E + 1e-9);
    }
}

#[test]
fn aon_dominates_fractional_everywhere() {
    use subsidy_games::aon::exact::min_aon_subsidy;
    for seed in 0..4u64 {
        let (game, tree) = random_game(5, 9100 + seed);
        let frac = BroadcastLpSolver.solve(&game, &tree).unwrap();
        let aon = min_aon_subsidy(&game, &tree, 10_000_000).unwrap();
        assert!(aon.cost >= frac.cost - 1e-7);
    }
}
