//! Property-based cross-crate invariants (proptest).
//!
//! Random broadcast games are generated from proptest-driven seeds; on
//! each, the core identities of the paper must hold:
//!
//! 1. `Σᵢ costᵢ(T; b) = Σ_{a established} (w_a − b_a)` (Section 2);
//! 2. Lemma 2's O(|E|) check ⟺ the exact best-response check;
//! 3. Theorem 6 always certifies with cost ≤ `wgt(T)/e`, and the LP (3)
//!    optimum never exceeds it;
//! 4. Rosenthal's Φ is an exact potential for unilateral deviations and
//!    satisfies the `C ≤ Φ ≤ H_n·C` sandwich;
//! 5. the minimum all-or-nothing cost is sandwiched between the
//!    fractional optimum and `wgt(T)`.

use proptest::prelude::*;
use rand::prelude::*;
use subsidy_games::core::{
    self, is_equilibrium, is_tree_equilibrium, NetworkDesignGame, State, SubsidyAssignment,
};
use subsidy_games::graph::{generators, kruskal, NodeId, RootedTree};

fn game_from_seed(
    n: usize,
    extra_p: f64,
    seed: u64,
) -> (NetworkDesignGame, Vec<subsidy_games::graph::EdgeId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = generators::random_connected(n, extra_p, &mut rng, 0.0..4.0);
    let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
    let tree = kruskal(game.graph()).unwrap();
    (game, tree)
}

fn random_subsidies(
    game: &NetworkDesignGame,
    tree: &[subsidy_games::graph::EdgeId],
    seed: u64,
) -> SubsidyAssignment {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
    let mut b = SubsidyAssignment::zero(game.graph());
    for &e in tree {
        if rng.random_bool(0.5) {
            let w = game.graph().weight(e);
            b.set(game.graph(), e, rng.random_range(0.0..=w.max(1e-12)));
        }
    }
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn costs_sum_to_social_cost(n in 3usize..10, seed in 0u64..1_000_000) {
        let (game, tree) = game_from_seed(n, 0.4, seed);
        let (state, _) = State::from_tree(&game, &tree).unwrap();
        let b = random_subsidies(&game, &tree, seed);
        let total: f64 = (0..game.num_players())
            .map(|i| core::player_cost(&game, &state, &b, i))
            .sum();
        let social = core::social_cost_subsidized(&game, &state, &b);
        prop_assert!((total - social).abs() < 1e-9);
    }

    #[test]
    fn lemma2_equals_exact_check(n in 3usize..9, seed in 0u64..1_000_000) {
        let (game, tree) = game_from_seed(n, 0.5, seed);
        let (state, rt) = State::from_tree(&game, &tree).unwrap();
        let b = random_subsidies(&game, &tree, seed);
        prop_assert_eq!(
            is_tree_equilibrium(&game, &rt, &b),
            is_equilibrium(&game, &state, &b)
        );
    }

    #[test]
    fn theorem6_always_certifies_within_budget(n in 3usize..14, seed in 0u64..1_000_000) {
        let (game, tree) = game_from_seed(n, 0.4, seed);
        let sol = subsidy_games::sne::theorem6::enforce(&game, &tree).unwrap();
        let bound = game.graph().weight_of(&tree) / std::f64::consts::E;
        prop_assert!(sol.cost <= bound + 1e-7);
        let rt = RootedTree::new(game.graph(), &tree, NodeId(0)).unwrap();
        prop_assert!(is_tree_equilibrium(&game, &rt, &sol.subsidies));
        let lp = subsidy_games::sne::lp_broadcast::enforce_tree_lp(&game, &tree).unwrap();
        prop_assert!(lp.cost <= sol.cost + 1e-6);
    }

    #[test]
    fn potential_is_exact_and_sandwiched(n in 3usize..9, seed in 0u64..1_000_000) {
        let (game, tree) = game_from_seed(n, 0.4, seed);
        let (mut state, _) = State::from_tree(&game, &tree).unwrap();
        let b = random_subsidies(&game, &tree, seed);
        let (c, phi, hn_c) = core::potential_sandwich(&game, &state, &b);
        prop_assert!(c <= phi + 1e-9 && phi <= hn_c + 1e-9);
        // Exactness under one best-response move.
        let i = (seed as usize) % game.num_players();
        let before_cost = core::player_cost(&game, &state, &b, i);
        let before_phi = core::rosenthal_potential(&game, &state, &b);
        let (path, new_cost) = core::best_response(&game, &state, &b, i);
        state.replace_path(i, path);
        let after_phi = core::rosenthal_potential(&game, &state, &b);
        prop_assert!(((after_phi - before_phi) - (new_cost - before_cost)).abs() < 1e-9);
    }

    #[test]
    fn aon_sandwiched_between_fractional_and_full(n in 3usize..7, seed in 0u64..1_000_000) {
        let (game, tree) = game_from_seed(n, 0.5, seed);
        let frac = subsidy_games::sne::lp_broadcast::enforce_tree_lp(&game, &tree).unwrap();
        let aon = subsidy_games::aon::exact::min_aon_subsidy(&game, &tree, 10_000_000).unwrap();
        prop_assert!(aon.cost >= frac.cost - 1e-7);
        prop_assert!(aon.cost <= game.graph().weight_of(&tree) + 1e-9);
        // And the AoN witness certifies.
        let b = SubsidyAssignment::all_or_nothing(game.graph(), &aon.edges);
        let rt = RootedTree::new(game.graph(), &tree, NodeId(0)).unwrap();
        prop_assert!(is_tree_equilibrium(&game, &rt, &b));
    }

    #[test]
    fn dynamics_always_converge_to_equilibrium(n in 3usize..8, seed in 0u64..1_000_000) {
        let (game, tree) = game_from_seed(n, 0.5, seed);
        let b = SubsidyAssignment::zero(game.graph());
        let res = core::dynamics_from_tree(
            &game, &tree, &b, core::MoveOrder::RoundRobin, 100_000,
        ).unwrap();
        prop_assert!(res.converged);
        prop_assert!(is_equilibrium(&game, &res.state, &b));
        for w in res.potential_trace.windows(2) {
            prop_assert!(w[1] < w[0] + 1e-9);
        }
    }

    /// The incremental engine's O(Δ)-per-move potential and cost
    /// maintenance must agree with the from-scratch
    /// `rosenthal_potential`/`player_cost` to 1e-9 after *every* move,
    /// across random games, random subsidies, and all three move orders.
    #[test]
    fn incremental_maintenance_matches_from_scratch(
        n in 3usize..9,
        seed in 0u64..1_000_000,
    ) {
        let (game, tree) = game_from_seed(n, 0.5, seed);
        let b = random_subsidies(&game, &tree, seed);
        for order in [
            core::MoveOrder::RoundRobin,
            core::MoveOrder::RandomOrder(seed),
            core::MoveOrder::MaxGain,
        ] {
            let (state, _) = State::from_tree(&game, &tree).unwrap();
            let mut engine = core::IncrementalDynamics::new(&game, state, &b);
            let mut order_rng = match order {
                core::MoveOrder::RandomOrder(s) => Some(StdRng::seed_from_u64(s)),
                _ => None,
            };
            let np = game.num_players();
            let mut players: Vec<usize> = (0..np).collect();
            let mut guard = 0usize;
            loop {
                guard += 1;
                prop_assert!(guard < 100_000, "dynamics did not converge");
                let mut moved_this_round = false;
                let check = |engine: &core::IncrementalDynamics| {
                    let full = core::rosenthal_potential(&game, engine.state(), &b);
                    assert!(
                        (engine.potential() - full).abs() < 1e-9,
                        "{order:?}: Φ {} vs from-scratch {}",
                        engine.potential(),
                        full
                    );
                    for j in 0..np {
                        let fresh = core::player_cost(&game, engine.state(), &b, j);
                        assert!(
                            (engine.cached_cost(j) - fresh).abs() < 1e-9,
                            "{order:?}: cost[{j}] {} vs from-scratch {fresh}",
                            engine.cached_cost(j)
                        );
                    }
                };
                match order {
                    core::MoveOrder::MaxGain => {
                        for _ in 0..np {
                            match engine.best_improving_move() {
                                Some(_) => {
                                    moved_this_round = true;
                                    check(&engine);
                                }
                                None => break,
                            }
                        }
                    }
                    _ => {
                        if let Some(rng) = order_rng.as_mut() {
                            players.shuffle(rng);
                        }
                        for &i in &players {
                            if engine.try_improve(i).is_some() {
                                moved_this_round = true;
                                check(&engine);
                            }
                        }
                    }
                }
                if !moved_this_round {
                    break;
                }
            }
            prop_assert!(is_equilibrium(&game, engine.state(), &b));
        }
    }

    /// The engine-backed public driver reproduces the naive
    /// recompute-per-move reference: same moves, same final state, and a
    /// potential trace equal up to float tolerance.
    #[test]
    fn incremental_driver_matches_naive_reference(
        n in 3usize..9,
        seed in 0u64..1_000_000,
    ) {
        let (game, tree) = game_from_seed(n, 0.5, seed);
        let b = random_subsidies(&game, &tree, seed);
        for order in [
            core::MoveOrder::RoundRobin,
            core::MoveOrder::RandomOrder(seed),
            core::MoveOrder::MaxGain,
        ] {
            let (s1, _) = State::from_tree(&game, &tree).unwrap();
            let (s2, _) = State::from_tree(&game, &tree).unwrap();
            let fast = core::best_response_dynamics(&game, s1, &b, order, 100_000);
            let naive = core::best_response_dynamics_naive(&game, s2, &b, order, 100_000);
            prop_assert!(fast.converged && naive.converged);
            prop_assert_eq!(fast.moves, naive.moves, "move count diverged under {:?}", order);
            for i in 0..game.num_players() {
                prop_assert_eq!(
                    fast.state.path(i),
                    naive.state.path(i),
                    "final path of player {} diverged under {:?}",
                    i,
                    order
                );
            }
            prop_assert_eq!(fast.potential_trace.len(), naive.potential_trace.len());
            for (a, c) in fast.potential_trace.iter().zip(&naive.potential_trace) {
                prop_assert!((a - c).abs() < 1e-9, "trace diverged under {:?}", order);
            }
        }
    }
}
