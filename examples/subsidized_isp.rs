//! A stable-network-design story: subsidizing a metro fiber build-out.
//!
//! A municipal authority wants `n` sites connected to a central exchange
//! (a broadcast game on a grid-with-shortcuts graph). Sites will share
//! link costs Shapley-style and won't stay on links that are individually
//! irrational — so the authority sweeps its subsidy budget and asks, for
//! each budget, how cheap a *stable* network it can guarantee
//! (`snd::heuristic::design_with_budget`), and what the unconditional
//! MST + Theorem 6 design costs.
//!
//! Run with: `cargo run --release --example subsidized_isp`

use rand::prelude::*;
use subsidy_games::core::NetworkDesignGame;
use subsidy_games::graph::{generators, mst_weight, NodeId};
use subsidy_games::snd;

fn main() {
    // A 4×5 street grid with some random diagonal shortcut ducts; weights
    // are trenching costs.
    let mut rng = StdRng::seed_from_u64(7);
    let mut g = generators::grid_graph(4, 5, 1.0);
    let n = g.node_count();
    for _ in 0..8 {
        let a = rng.random_range(0..n as u32);
        let b = rng.random_range(0..n as u32);
        if a != b && g.find_edge(NodeId(a), NodeId(b)).is_none() {
            let w = rng.random_range(0.7..2.5);
            g.add_edge(NodeId(a), NodeId(b), w).unwrap();
        }
    }
    let game = NetworkDesignGame::broadcast(g, NodeId(0)).expect("connected grid");
    let opt = mst_weight(game.graph()).expect("connected");
    println!(
        "metro build-out: {} sites, exchange at the corner, optimal cost {opt:.3}",
        game.num_players()
    );

    // The unconditional design: MST + Theorem 6, budget ≤ wgt/e.
    let unconditional = snd::heuristic::mst_theorem6(&game).expect("broadcast game");
    println!(
        "MST + Theorem 6: social cost {:.3}, subsidies {:.3} (≤ wgt/e = {:.3})\n",
        unconditional.weight,
        unconditional.subsidy_cost,
        opt / std::f64::consts::E
    );

    println!(
        "{:>10}  {:>12}  {:>12}",
        "budget", "stable cost", "subsidy used"
    );
    println!("{}", "-".repeat(40));
    for step in 0..=6 {
        let budget = opt * step as f64 / (6.0 * std::f64::consts::E);
        let design = snd::heuristic::design_with_budget(&game, budget).expect("designable");
        println!(
            "{budget:>10.3}  {:>12.3}  {:>12.3}",
            design.weight, design.subsidy_cost
        );
        assert!(design.subsidy_cost <= budget + 1e-9);
    }
    println!(
        "\nthe curve flattens at the optimum once the budget reaches the LP (3)\n\
         price of the MST — and wgt/e always suffices (Theorem 6)"
    );
}
