//! Exact price of stability on small broadcast games, and how subsidies
//! close the gap.
//!
//! Enumerates all spanning trees of random small instances to compute the
//! exact PoS, compares it with the best-response-from-OPT potential bound
//! and `H_n` (Anshelevich et al.), then shows the PoS-vs-budget curve
//! hitting 1 at budget `wgt(MST)/e` (Theorem 6).
//!
//! Run with: `cargo run --release --example price_of_stability`

use rand::prelude::*;
use subsidy_games::core::NetworkDesignGame;
use subsidy_games::graph::{generators, harmonic, NodeId};
use subsidy_games::snd::pos;

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);
    println!("{:>5} {:>9} {:>10} {:>8}", "n", "PoS", "BR-bound", "H_n");
    let mut worst: f64 = 1.0;
    let mut worst_game: Option<NetworkDesignGame> = None;
    for _ in 0..12 {
        let n = rng.random_range(5..8usize);
        let g = generators::random_connected(n, 0.6, &mut rng, 0.2..3.0);
        let game = NetworkDesignGame::broadcast(g, NodeId(0)).expect("connected");
        let pos_val = pos::exact_pos(&game, 2_000_000).expect("small instance");
        let (br, _) = pos::br_from_opt_bound(&game).expect("dynamics converge");
        let hn = harmonic(game.num_players() as u64);
        println!(
            "{:>5} {:>9.4} {:>10.4} {:>8.4}",
            game.num_players(),
            pos_val,
            br,
            hn
        );
        assert!(pos_val <= br + 1e-9 && br <= hn + 1e-9);
        if pos_val > worst {
            worst = pos_val;
            worst_game = Some(game);
        }
    }
    println!(
        "\nworst observed PoS {worst:.4} (paper: broadcast games have PoS \
         ≥ 1.818 in the worst case, ≤ O(log log n))"
    );

    if let Some(game) = worst_game {
        println!("\nsubsidies close the gap on the worst instance:");
        println!("{:>10} {:>10}", "budget β", "PoS(β)");
        for step in 0..=5 {
            let beta = step as f64 / (5.0 * std::f64::consts::E);
            let r = pos::pos_with_budget_fraction(&game, beta, 2_000_000).expect("small");
            println!("{beta:>10.4} {r:>10.4}");
        }
        println!("β = 1/e always suffices for PoS = 1 (Theorems 1 + 6)");
    }
}
