//! A gallery of the paper's three hardness gadgets, built from tiny source
//! instances and verified end-to-end.
//!
//! * Theorem 3 (Figures 1–2): BIN PACKING ↔ equilibrium-MST existence.
//! * Theorem 5 (Figure 3): INDEPENDENT SET ↔ minimum equilibrium weight.
//! * Theorem 12 (Figures 5–7): 3SAT-4 ↔ light-subsidy enforceability.
//!
//! Run with: `cargo run --release --example hardness_gallery`

use subsidy_games::reductions::{
    binpack_reduction,
    binpacking::BinPacking,
    build_is_reduction, build_sat_reduction, dpll,
    independent_set::{max_independent_set, petersen},
    sat::{Clause, Cnf, Literal},
    sat_reduction::DEFAULT_K,
    solve_bin_packing,
};

fn main() {
    // --- Theorem 3 ---
    println!("— Theorem 3: BIN PACKING → SND with budget 0 —");
    for inst in [
        BinPacking {
            sizes: vec![2, 2, 4],
            bins: 2,
            capacity: 4,
        },
        BinPacking {
            sizes: vec![10, 10, 4],
            bins: 2,
            capacity: 12,
        },
    ] {
        let packing = solve_bin_packing(&inst);
        let red = binpack_reduction::build(&inst);
        let equilibrium = red.equilibrium_assignment();
        println!(
            "  items {:?} into {}×{}: packing {}, equilibrium MST {} — {}",
            inst.sizes,
            inst.bins,
            inst.capacity,
            if packing.is_some() { "exists" } else { "none" },
            if equilibrium.is_some() {
                "exists"
            } else {
                "none"
            },
            if packing.is_some() == equilibrium.is_some() {
                "agree ✓"
            } else {
                "DISAGREE ✗"
            },
        );
        assert_eq!(packing.is_some(), equilibrium.is_some());
    }

    // --- Theorem 5 ---
    println!("\n— Theorem 5: INDEPENDENT SET → price-of-stability APX-hardness —");
    let h = petersen();
    let red = build_is_reduction(&h, 1.0 / 12.0);
    let max_is = max_independent_set(&h);
    let tree = red.tree_for_independent_set(&max_is);
    let weight = red.game.graph().weight_of(&tree);
    println!(
        "  Petersen graph: maxIS = {}, min equilibrium weight = {:.4} \
         (= 5n/2 − (1−δ)·maxIS = {:.4}) — witness certified: {}",
        max_is.len(),
        weight,
        red.equilibrium_weight(max_is.len()),
        red.tree_is_equilibrium(&tree),
    );
    assert!(red.tree_is_equilibrium(&tree));

    // --- Theorem 12 ---
    println!("\n— Theorem 12: 3SAT-4 → all-or-nothing SNE inapproximability —");
    let cnf = Cnf {
        num_vars: 3,
        clauses: vec![Clause([Literal::pos(0), Literal::neg(1), Literal::pos(2)])],
    };
    let red = build_sat_reduction(&cnf, DEFAULT_K).expect("3-colorable formula");
    let rt = red.rooted_tree();
    let truth = dpll(&cnf).expect("satisfiable");
    let light = red.light_assignment_for(&truth);
    println!(
        "  φ = (x ∨ ȳ ∨ z): gadget graph has {} nodes; satisfying assignment \
         {:?} maps to light subsidies of cost {} (vs heavy edges ≥ K = {}) — \
         enforcement certified: {}",
        red.game.graph().node_count(),
        truth,
        red.light_cost(),
        DEFAULT_K,
        red.enforces(&rt, &light),
    );
    assert!(red.enforces(&rt, &light));
    // And a falsifying assignment fails.
    let falsify = vec![false, true, false];
    assert!(!cnf.eval(&falsify));
    let bad = red.light_assignment_for(&falsify);
    println!(
        "  falsifying assignment {falsify:?} maps to light subsidies that do NOT \
         enforce: {}",
        !red.enforces(&rt, &bad),
    );
    assert!(!red.enforces(&rt, &bad));
    println!("\nall three reductions verified end-to-end ✓");
}
