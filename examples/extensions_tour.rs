//! A tour of the Section 6 extensions implemented beyond the paper's core
//! results: multicast games, weighted players, approximate equilibria,
//! coalitional stability, and the combinatorial cycle solver.
//!
//! Run with: `cargo run --release --example extensions_tour`

use subsidy_games::core::{
    self, multicast::multicast, weighted::Demands, NetworkDesignGame, State, SubsidyAssignment,
};
use subsidy_games::graph::{generators, harmonic, EdgeId, NodeId};
use subsidy_games::{snd, sne};

fn main() {
    // --- Multicast SND ---
    println!("— multicast: Steiner-optimal stable designs —");
    let g = generators::grid_graph(2, 3, 1.0);
    let game = multicast(g.clone(), NodeId(0), &[NodeId(2), NodeId(5)]).unwrap();
    let (_, steiner) =
        core::multicast::exact_steiner_tree(&g, NodeId(0), &[NodeId(2), NodeId(5)]).unwrap();
    let design =
        snd::multicast::min_weight_within_budget_multicast(&game, f64::INFINITY, 1_000_000)
            .unwrap();
    println!(
        "  grid 2x3, terminals {{2, 5}}: Steiner optimum {steiner}, best stable design \
         weight {:.3} at subsidy {:.3}",
        design.weight, design.min_subsidy
    );

    // --- Weighted players ---
    println!("\n— weighted players: demand changes the price of stability —");
    let mut g = subsidy_games::graph::Graph::new(4);
    let e0 = g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
    let e1 = g.add_edge(NodeId(1), NodeId(2), 1.2).unwrap();
    let _ = g.add_edge(NodeId(2), NodeId(3), 0.9).unwrap();
    let e3 = g.add_edge(NodeId(3), NodeId(0), 1.0).unwrap();
    let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
    let (state, _) = State::from_tree(&game, &[e0, e1, e3]).unwrap();
    for (label, demands) in [
        ("uniform demands", Demands::uniform(&game)),
        (
            "node 1 demand ×1000",
            Demands::new(&game, vec![1000.0, 1.0, 1.0]).unwrap(),
        ),
    ] {
        let (sol, _) = sne::lp_weighted::enforce_state_weighted(&game, &state, &demands).unwrap();
        println!("  {label}: minimum enforcing subsidy {:.4}", sol.cost);
    }

    // --- Approximate equilibria ---
    println!("\n— approximate equilibria: the stability threshold α* —");
    let n = 8;
    let g = generators::cycle_graph(n + 1, 1.0);
    let game = NetworkDesignGame::broadcast(g, NodeId(0)).unwrap();
    let tree: Vec<EdgeId> = (0..n as u32).map(EdgeId).collect();
    let (state, _) = State::from_tree(&game, &tree).unwrap();
    let b0 = SubsidyAssignment::zero(game.graph());
    println!(
        "  Theorem 11 cycle (n = {n}): α* = {:.4} (= H_n = {:.4}); the MST is an \
         H_n-approximate equilibrium for free",
        core::stability_threshold(&game, &state, &b0),
        harmonic(n as u64),
    );
    let t6 = sne::theorem6::enforce(&game, &tree).unwrap();
    println!(
        "  with Theorem 6 subsidies ({:.3}): α* = {:.4}",
        t6.cost,
        core::stability_threshold(&game, &state, &t6.subsidies),
    );

    // --- Coalitions ---
    println!("\n— coalitions: Nash but not strong —");
    let mut g = subsidy_games::graph::Graph::new(5);
    let e_direct = g.add_edge(NodeId(2), NodeId(0), 2.5).unwrap();
    let _ = g.add_edge(NodeId(2), NodeId(1), 1.0).unwrap();
    let _ = g.add_edge(NodeId(1), NodeId(0), 1.0).unwrap();
    let e32 = g.add_edge(NodeId(3), NodeId(2), 0.0).unwrap();
    let e42 = g.add_edge(NodeId(4), NodeId(2), 0.0).unwrap();
    let game = NetworkDesignGame::new(
        g,
        vec![
            core::Player {
                source: NodeId(3),
                terminal: NodeId(0),
            },
            core::Player {
                source: NodeId(4),
                terminal: NodeId(0),
            },
        ],
    )
    .unwrap();
    let state = State::new(&game, vec![vec![e32, e_direct], vec![e42, e_direct]]).unwrap();
    let b = SubsidyAssignment::zero(game.graph());
    println!(
        "  two players on an expensive shared edge: Nash = {}, 2-strong = {}",
        core::is_equilibrium(&game, &state, &b),
        core::is_strong_equilibrium(&game, &state, &b, 2),
    );
    if let Some(dev) = core::find_coalition_deviation(&game, &state, &b, 2) {
        println!(
            "  the pair {:?} jointly reroutes: costs {:?} → both strictly better",
            dev.members, dev.costs
        );
    }

    // --- Combinatorial cycle solver ---
    println!("\n— open problem: LP-free exact SNE on cycles —");
    let (game, tree) = sne::lower_bound::cycle_instance(32);
    let comb = sne::combinatorial::enforce_cycle(&game, &tree).unwrap();
    let lp = sne::lp_broadcast::enforce_tree_lp(&game, &tree).unwrap();
    println!(
        "  n = 32 cycle: greedy packing {:.5} = LP optimum {:.5} (no LP required)",
        comb.cost, lp.cost
    );
}
