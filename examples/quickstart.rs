//! Quickstart: enforce a minimum spanning tree as a Nash equilibrium.
//!
//! Builds a broadcast network design game on a small random graph, checks
//! that the MST is *not* an equilibrium on its own, then stabilizes it two
//! ways — the exact LP (3) optimum and the Theorem 6 constructive
//! algorithm — and verifies both certificates.
//!
//! Run with: `cargo run --example quickstart`

use subsidy_games::core::{
    is_tree_equilibrium, lemma2_violation, NetworkDesignGame, SubsidyAssignment,
};
use subsidy_games::graph::{generators, kruskal, NodeId, RootedTree};
use subsidy_games::sne;

fn main() {
    // The Theorem 11 cycle: eight players on a unit-weight ring around the
    // root — simple enough to eyeball, unstable enough to be interesting.
    let n = 8;
    let g = generators::cycle_graph(n + 1, 1.0);
    let game = NetworkDesignGame::broadcast(g, NodeId(0)).expect("connected graph");
    let mst = kruskal(game.graph()).expect("connected graph");
    let mst_weight = game.graph().weight_of(&mst);
    println!(
        "broadcast game: {} players, MST weight {mst_weight}",
        game.num_players()
    );

    // Without subsidies the far player defects to the closing edge.
    let rt = RootedTree::new(game.graph(), &mst, NodeId(0)).unwrap();
    let none = SubsidyAssignment::zero(game.graph());
    match lemma2_violation(&game, &rt, &none) {
        Some(v) => println!(
            "unsubsidized MST is unstable: player at node {} pays {:.3} but \
             could pay {:.3} via edge {:?}",
            v.node, v.lhs, v.rhs, v.via
        ),
        None => println!("unsubsidized MST is already an equilibrium"),
    }

    // Exact minimum subsidies: LP (3).
    let lp = sne::lp_broadcast::enforce_tree_lp(&game, &mst).expect("LP (3) solves");
    println!(
        "LP (3) optimum: {:.4} ({:.1}% of the tree weight)",
        lp.cost,
        100.0 * lp.cost / mst_weight
    );

    // Constructive Theorem 6 subsidies: guaranteed ≤ wgt(T)/e.
    let t6 = sne::theorem6::enforce(&game, &mst).expect("Theorem 6 applies to MSTs");
    println!(
        "Theorem 6 cost: {:.4} (guarantee: ≤ wgt(T)/e = {:.4})",
        t6.cost,
        mst_weight / std::f64::consts::E
    );

    // Both assignments certify.
    assert!(is_tree_equilibrium(&game, &rt, &lp.subsidies));
    assert!(is_tree_equilibrium(&game, &rt, &t6.subsidies));
    println!("both subsidy assignments enforce the MST as a Nash equilibrium ✓");

    // Where did Theorem 6 put the money? On the least crowded (far) edges.
    print!("Theorem 6 per-edge subsidies along the path:");
    for &e in &mst {
        print!(" {:.2}", t6.subsidies.get(e));
    }
    println!();
}
